package serve

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/isasgd/isasgd/internal/model"
	"github.com/isasgd/isasgd/internal/objective"
	"github.com/isasgd/isasgd/internal/snapshot"
)

// TestLivePublishHammer drives the whole lock-free read path under the
// race detector: one writer hot-publishes snapshot versions (weights all
// equal to the version's Epoch) and churns unrelated registry entries,
// while reader goroutines Predict and List concurrently. Readers assert
// (a) the Seq they observe never decreases, and (b) every response is
// internally consistent — the score matches the version the response
// claims, so a torn map or version read cannot go unnoticed.
func TestLivePublishHammer(t *testing.T) {
	const dim = 32
	reg := NewRegistry()
	st := snapshot.Of(0, 0, make([]float64, dim))
	m := &Model{Name: "live", Store: st}
	m.live.Store(true)
	if err := reg.Publish(m); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var writer, readers sync.WaitGroup

	writer.Add(1)
	go func() {
		defer writer.Done()
		buf := make([]float64, dim)
		for e := 1; !stop.Load(); e++ {
			for i := range buf {
				buf[i] = float64(e)
			}
			st.PublishCopy(e, int64(e), buf)
			// Churn the copy-on-write map alongside the version swaps.
			name := fmt.Sprintf("churn-%d", e%4)
			if e%2 == 0 {
				_ = reg.Publish(&Model{Name: name, Store: snapshot.Of(e, int64(e), buf)})
			} else {
				reg.Delete(name)
			}
		}
	}()

	batch := []Instance{{Indices: []int{0, 5, 31}, Values: []float64{1, 1, 1}}}
	for r := 0; r < 8; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var lastSeq uint64
			for n := 0; n < 4000; n++ {
				resp, err := reg.Predict("live", batch)
				if err != nil {
					t.Errorf("Predict: %v", err)
					return
				}
				if resp.Seq < lastSeq {
					t.Errorf("Seq went backwards: %d after %d", resp.Seq, lastSeq)
					resp.Release()
					return
				}
				lastSeq = resp.Seq
				// All coordinates of the epoch-e version equal e, so the
				// 3-coordinate instance must score exactly 3e — anything else
				// is a torn read.
				if want := 3 * float64(resp.Epoch); resp.Predictions[0].Score != want {
					t.Errorf("torn read: score %g in epoch-%d version (want %g)",
						resp.Predictions[0].Score, resp.Epoch, want)
					resp.Release()
					return
				}
				if !resp.Live {
					t.Error("live model reported live=false")
					resp.Release()
					return
				}
				resp.Release()
				if n%64 == 0 {
					infos := reg.List()
					var seen bool
					for _, mi := range infos {
						if mi.Name == "live" {
							seen = true
							if mi.Seq < lastSeq {
								t.Errorf("List Seq went backwards: %d after %d", mi.Seq, lastSeq)
								return
							}
						}
					}
					if !seen {
						t.Error("live model vanished from List")
						return
					}
				}
			}
		}()
	}
	readers.Wait()
	stop.Store(true)
	writer.Wait()
}

// TestPredictZeroAlloc proves the steady-state single-instance predict
// path allocates nothing: map load, version load, validation, pooled
// response, scoring and telemetry are all allocation-free once warm.
func TestPredictZeroAlloc(t *testing.T) {
	if model.RaceEnabled {
		t.Skip("allocation accounting is not meaningful under the race detector")
	}
	reg := NewRegistry()
	w := make([]float64, 1024)
	for i := range w {
		w[i] = float64(i)
	}
	if err := reg.Publish(&Model{Name: "m", Store: snapshot.Of(1, 1, w)}); err != nil {
		t.Fatal(err)
	}
	batch := []Instance{{Indices: []int{1, 2, 512}, Values: []float64{0.5, -1, 2}}}
	// Warm the response pool.
	for i := 0; i < 8; i++ {
		resp, err := reg.Predict("m", batch)
		if err != nil {
			t.Fatal(err)
		}
		resp.Release()
	}
	if n := testing.AllocsPerRun(1000, func() {
		resp, err := reg.Predict("m", batch)
		if err != nil {
			t.Fatal(err)
		}
		resp.Release()
	}); n != 0 {
		t.Fatalf("steady-state predict allocates %.1f objects/op, want 0", n)
	}
}

// predictHot POSTs a single-instance predict against the named model and
// decodes the response; ok is false on a non-200 status.
func predictHot(t *testing.T, base, name string) (PredictResponse, bool) {
	t.Helper()
	resp := postJSON(t, base+"/v1/models/"+name+"/predict", PredictRequest{
		Indices: []int{0, 1}, Values: []float64{1, 0.5},
	})
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return PredictResponse{}, false
	}
	return decodeBody[PredictResponse](t, resp), true
}

// TestLiveModelEpochAdvances is the train-and-serve acceptance path: a
// running job's model is predictable mid-training, reports live=true,
// and its Epoch/Seq advance between requests before the job completes.
// Cancelling the job afterwards withdraws the live model (rollback).
func TestLiveModelEpochAdvances(t *testing.T) {
	ts, mgr, _ := testServer(t, 1)
	resp := postJSON(t, ts.URL+"/v1/jobs", longSpec("hot"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	sub := decodeBody[JobStatus](t, resp)

	// Poll predictions until we have observed the epoch advance across a
	// live model (two distinct epochs, non-decreasing Seq).
	deadline := time.Now().Add(60 * time.Second)
	var epochs []int
	var lastSeq uint64
	for time.Now().Before(deadline) {
		pr, ok := predictHot(t, ts.URL, "hot")
		if !ok { // model not registered yet (job still queued)
			time.Sleep(time.Millisecond)
			continue
		}
		if !pr.Live {
			t.Fatalf("mid-training model reported live=false (epoch %d)", pr.Epoch)
		}
		if pr.Seq < lastSeq {
			t.Fatalf("Seq went backwards over HTTP: %d after %d", pr.Seq, lastSeq)
		}
		lastSeq = pr.Seq
		if len(epochs) == 0 || epochs[len(epochs)-1] != pr.Epoch {
			epochs = append(epochs, pr.Epoch)
		}
		if len(epochs) >= 3 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if len(epochs) < 3 {
		t.Fatalf("live epoch never advanced: observed %v", epochs)
	}
	for i := 1; i < len(epochs); i++ {
		if epochs[i] <= epochs[i-1] {
			t.Fatalf("epochs not increasing: %v", epochs)
		}
	}
	if st := decodeBody[JobStatus](t, postGet(t, ts.URL+"/v1/jobs/"+sub.ID)); st.State.Terminal() {
		t.Fatalf("job finished before live observation completed: %+v", st)
	}

	// Cancelling rolls the live model back out of the registry.
	if err := mgr.Cancel(sub.ID); err != nil {
		t.Fatal(err)
	}
	j, _ := mgr.Get(sub.ID)
	<-j.Done()
	if _, ok := mgr.Registry().Get("hot"); ok {
		t.Fatal("cancelled job's live model was not rolled back")
	}
}

// TestLiveModelFinalizes: once the job completes, the same model (same
// registry entry — no republish) flips to live=false and serves the
// final epoch.
func TestLiveModelFinalizes(t *testing.T) {
	ts, _, _ := testServer(t, 1)
	spec := longSpec("final")
	spec.Epochs = 300
	spec.EvalEvery = 100
	resp := postJSON(t, ts.URL+"/v1/jobs", spec)
	sub := decodeBody[JobStatus](t, resp)
	if st := pollJob(t, ts.URL, sub.ID); st.State != StateDone {
		t.Fatalf("job state = %s (err %q)", st.State, st.Error)
	}
	pr, ok := predictHot(t, ts.URL, "final")
	if !ok {
		t.Fatal("finished model not predictable")
	}
	if pr.Live {
		t.Fatal("finished model still reports live=true")
	}
	if pr.Epoch != 300 {
		t.Fatalf("finished model epoch = %d, want 300", pr.Epoch)
	}
	if pr.Seq == 0 {
		t.Fatal("finished model has no version seq")
	}
}

// postGet is http.Get with test-fatal error handling.
func postGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestLiveModelLifecycleRespectsExternalWriters pins the interaction of
// live publication with clients mutating the registry mid-job: finalize
// republishes when the live entry was deleted or replaced (completion
// wins the name, the pre-snapshot contract), and rollback leaves an
// entry alone once someone else holds the name.
func TestLiveModelLifecycleRespectsExternalWriters(t *testing.T) {
	mgr := NewManager(NewRegistry(), 1, "")
	obj := parsedObjective(t)

	// finalize after an external DELETE: the finished model reappears.
	lv := mgr.newLiveModel(&Job{model: "a"}, obj, "ds", snapshot.Of(1, 1, []float64{1}))
	lv.publish()
	if !mgr.Registry().Delete("a") {
		t.Fatal("external delete failed")
	}
	if err := lv.finalize(); err != nil {
		t.Fatal(err)
	}
	if cur, ok := mgr.Registry().Get("a"); !ok || cur != lv.m || cur.Live() {
		t.Fatalf("finalize after delete did not republish the finished model (ok=%v)", ok)
	}

	// finalize after an external replace: the job's completion wins.
	lv2 := mgr.newLiveModel(&Job{model: "b"}, obj, "ds", snapshot.Of(1, 1, []float64{2}))
	lv2.publish()
	imported := &Model{Name: "b", Store: snapshot.Of(9, 9, []float64{9})}
	if err := mgr.Registry().Publish(imported); err != nil {
		t.Fatal(err)
	}
	if err := lv2.finalize(); err != nil {
		t.Fatal(err)
	}
	if cur, _ := mgr.Registry().Get("b"); cur != lv2.m {
		t.Fatal("finalize after replace did not restore the finished model")
	}

	// rollback after an external replace: the imported model survives.
	lv3 := mgr.newLiveModel(&Job{model: "c"}, obj, "ds", snapshot.Of(1, 1, []float64{3}))
	lv3.publish()
	imported2 := &Model{Name: "c", Store: snapshot.Of(9, 9, []float64{9})}
	if err := mgr.Registry().Publish(imported2); err != nil {
		t.Fatal(err)
	}
	lv3.rollback()
	if cur, ok := mgr.Registry().Get("c"); !ok || cur != imported2 {
		t.Fatal("rollback clobbered a model published over the live name")
	}

	// rollback after an external delete: the name stays gone.
	lv4 := mgr.newLiveModel(&Job{model: "d"}, obj, "ds", snapshot.Of(1, 1, []float64{4}))
	lv4.publish()
	mgr.Registry().Delete("d")
	lv4.rollback()
	if _, ok := mgr.Registry().Get("d"); ok {
		t.Fatal("rollback resurrected a deleted name")
	}
}

// parsedObjective resolves the default objective the way job compilation
// does.
func parsedObjective(t *testing.T) objective.Objective {
	t.Helper()
	obj, err := parseObjective(JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	return obj
}

// TestRollbackRestoresPreviousModel: a live job over an existing name
// that fails (here: cancelled) restores the previously published model
// instead of leaving the name dangling.
func TestRollbackRestoresPreviousModel(t *testing.T) {
	ts, mgr, _ := testServer(t, 1)
	// A finished model owns the name first.
	spec := longSpec("shared")
	spec.Epochs = 5
	spec.EvalEvery = 1
	sub := decodeBody[JobStatus](t, postJSON(t, ts.URL+"/v1/jobs", spec))
	if st := pollJob(t, ts.URL, sub.ID); st.State != StateDone {
		t.Fatalf("seed job state = %s", st.State)
	}
	before, _ := predictHot(t, ts.URL, "shared")

	// A long job takes the name over (live), then is cancelled.
	sub2 := decodeBody[JobStatus](t, postJSON(t, ts.URL+"/v1/jobs", longSpec("shared")))
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if pr, ok := predictHot(t, ts.URL, "shared"); ok && pr.Live {
			// The retrain gate: a name that was serving a finished model
			// must not go live before at least one trained epoch.
			if pr.Epoch < 1 {
				t.Fatalf("retrain went live with untrained weights (epoch %d)", pr.Epoch)
			}
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := mgr.Cancel(sub2.ID); err != nil {
		t.Fatal(err)
	}
	j, _ := mgr.Get(sub2.ID)
	<-j.Done()

	after, ok := predictHot(t, ts.URL, "shared")
	if !ok {
		t.Fatal("name vanished after rollback")
	}
	if after.Live {
		t.Fatal("rolled-back model reports live=true")
	}
	if after.Epoch != before.Epoch || after.Predictions[0] != before.Predictions[0] {
		t.Fatalf("rollback did not restore the previous model: before %+v after %+v",
			before, after)
	}
}
