package serve

import (
	"fmt"
	"sync"
	"testing"

	"github.com/isasgd/isasgd/internal/snapshot"
	"github.com/isasgd/isasgd/internal/xrand"
)

// benchInstance synthesizes one serving-shaped sparse instance (the
// shared ServingBench* workload shape from benchbase.go).
func benchInstance(dim, nnz int, seed uint64) Instance {
	rng := xrand.New(seed)
	in := Instance{Indices: make([]int, nnz), Values: make([]float64, nnz)}
	for k := 0; k < nnz; k++ {
		in.Indices[k] = rng.Intn(dim)
		in.Values[k] = rng.NormFloat64()
	}
	return in
}

func benchWeights(dim int, seed uint64) []float64 {
	rng := xrand.New(seed)
	w := make([]float64, dim)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	return w
}

// BenchmarkRegistryPredict compares the serving hot path before and
// after the snapshot refactor — rwmutex (the seed path, preserved as
// BaselineRegistry: RLock + per-request allocations) vs cow (atomic map
// + version load, pooled response) — at 1, 4 and 16 concurrent
// requester goroutines. The cow numbers are the BENCH_4.json baseline
// CI archives via isasgd-bench -experiment serving.
func BenchmarkRegistryPredict(b *testing.B) {
	w := benchWeights(ServingBenchDim, 11)
	batch := []Instance{benchInstance(ServingBenchDim, ServingBenchNNZ, 7)}

	cow := NewRegistry()
	if err := cow.Publish(&Model{Name: "m", Store: snapshot.Of(1, 1, w)}); err != nil {
		b.Fatal(err)
	}
	old := NewBaselineRegistry()
	old.Publish("m", w)

	impls := []struct {
		name string
		op   func() error
	}{
		{"rwmutex", func() error {
			_, err := old.Predict("m", batch)
			return err
		}},
		{"cow", func() error {
			resp, err := cow.Predict("m", batch)
			if err == nil {
				resp.Release()
			}
			return err
		}},
	}
	for _, impl := range impls {
		for _, g := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/goroutines=%d", impl.name, g), func(b *testing.B) {
				b.ReportAllocs()
				// Distribute exactly b.N ops across the g goroutines (the
				// remainder goes to the first b.N%g) so ns/op and allocs/op
				// divide by the true op count.
				per, rem := b.N/g, b.N%g
				var wg sync.WaitGroup
				b.ResetTimer()
				for i := 0; i < g; i++ {
					n := per
					if i < rem {
						n++
					}
					if n == 0 {
						continue
					}
					wg.Add(1)
					go func(n int) {
						defer wg.Done()
						for j := 0; j < n; j++ {
							if err := impl.op(); err != nil {
								b.Error(err)
								return
							}
						}
					}(n)
				}
				wg.Wait()
			})
		}
	}
}
