package serve

import (
	"net/http"
	"testing"

	"github.com/isasgd/isasgd/internal/model"
	"github.com/isasgd/isasgd/internal/snapshot"
)

// f32Store builds a single-version store carrying float32-representable
// weights and the f32 dtype stamp — exactly what an f32 training run
// publishes.
func f32Store(w []float64) *snapshot.Store {
	st := snapshot.Of(1, 1, w)
	st.SetDType(model.PrecisionF32)
	return st
}

// TestPredictF32Bitwise pins the serving half of the f32 path: a model
// whose store declares f32 scores through the narrowed weight view, and
// because f32-trained weights widen exactly, every score is bitwise
// identical to the float64 scorer over the same weights.
func TestPredictF32Bitwise(t *testing.T) {
	w := make([]float64, 512)
	for i := range w {
		// Arbitrary but exactly float32-representable values, sign-mixed.
		w[i] = float64(float32(i)*0.25 - 17.5)
	}
	reg := NewRegistry()
	if err := reg.Publish(&Model{Name: "w64", Store: snapshot.Of(1, 1, w)}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Publish(&Model{Name: "w32", Store: f32Store(w)}); err != nil {
		t.Fatal(err)
	}
	batch := []Instance{
		{Indices: []int{0, 3, 511}, Values: []float64{1, -0.5, 2.25}},
		{Indices: []int{7, 7, 130}, Values: []float64{0.125, 0.125, -3}}, // duplicate index
		{Indices: []int{511, 9000}, Values: []float64{1, 42}},            // out-of-range ignored
		{Indices: nil, Values: nil},
	}
	r64, err := reg.Predict("w64", batch)
	if err != nil {
		t.Fatal(err)
	}
	r32, err := reg.Predict("w32", batch)
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		if r32.Predictions[i] != r64.Predictions[i] {
			t.Fatalf("instance %d: f32 path %+v != f64 path %+v",
				i, r32.Predictions[i], r64.Predictions[i])
		}
	}
	r64.Release()
	r32.Release()
}

// TestPredictF32ZeroAlloc proves the f32 scoring path is allocation-free
// once warm: the version's float32 view materializes on the first
// predict, and every request after that is map load, version load,
// pooled response, half-width dot.
func TestPredictF32ZeroAlloc(t *testing.T) {
	if model.RaceEnabled {
		t.Skip("allocation accounting is not meaningful under the race detector")
	}
	reg := NewRegistry()
	w := make([]float64, 1024)
	for i := range w {
		w[i] = float64(float32(i))
	}
	if err := reg.Publish(&Model{Name: "m", Store: f32Store(w)}); err != nil {
		t.Fatal(err)
	}
	batch := []Instance{{Indices: []int{1, 2, 512}, Values: []float64{0.5, -1, 2}}}
	// Warm-up: pools the response and materializes the version's W32.
	for i := 0; i < 8; i++ {
		resp, err := reg.Predict("m", batch)
		if err != nil {
			t.Fatal(err)
		}
		resp.Release()
	}
	if n := testing.AllocsPerRun(1000, func() {
		resp, err := reg.Predict("m", batch)
		if err != nil {
			t.Fatal(err)
		}
		resp.Release()
	}); n != 0 {
		t.Fatalf("steady-state f32 predict allocates %.1f objects/op, want 0", n)
	}
}

// TestJobSpecPrecisionValidation: bad precision specs answer at
// submission (400 through the HTTP layer), mirroring solver validation.
func TestJobSpecPrecisionValidation(t *testing.T) {
	for _, spec := range []JobSpec{
		{Dataset: "small", Precision: "f16"},
		{Dataset: "small", Algo: "svrg-sgd", Precision: "f32"},
		{Dataset: "small", Algo: "svrg-asgd", Precision: "f32"},
		{Dataset: "small", Algo: "saga", Precision: "f32"},
		{Kind: "stream", Path: "x", Dim: 8, Precision: "f16"},
	} {
		if _, err := compile(spec, false, "/"); err == nil {
			t.Errorf("spec %+v accepted, want error", spec)
		}
	}
}

// TestJobPrecisionF32EndToEnd trains a small f32 batch job through the
// full HTTP stack: the published model must carry dtype "f32" in both
// the model listing and its weights (float32-representable — proof the
// job really trained at half width), and predictions must flow.
func TestJobPrecisionF32EndToEnd(t *testing.T) {
	ts, mgr, _ := testServer(t, 1)
	resp := postJSON(t, ts.URL+"/v1/jobs", JobSpec{
		Model: "half", Dataset: "small", Algo: "is-asgd",
		Epochs: 4, Step: 0.5, Seed: 1, Precision: "f32",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	sub := decodeBody[JobStatus](t, resp)
	st := pollJob(t, ts.URL, sub.ID)
	if st.State != StateDone {
		t.Fatalf("job state = %s (err %q), want done", st.State, st.Error)
	}

	m, ok := mgr.Registry().Get("half")
	if !ok {
		t.Fatal("model not published")
	}
	if dt := m.Store.DType(); dt != model.PrecisionF32 {
		t.Fatalf("store dtype = %q, want f32", dt)
	}
	for j, w := range m.Version().Weights {
		if w != float64(float32(w)) {
			t.Fatalf("weight %d = %g not float32-representable — f32 path not taken", j, w)
		}
	}
	var listed *ModelInfo
	for _, info := range mgr.Registry().List() {
		if info.Name == "half" {
			listed = &info
			break
		}
	}
	if listed == nil || listed.DType != model.PrecisionF32 {
		t.Fatalf("List dtype = %+v, want f32", listed)
	}
	pred, live := predictHot(t, ts.URL, "half")
	if !live {
		t.Fatal("predict against the f32 model failed")
	}
	if len(pred.Predictions) != 1 {
		t.Fatalf("got %d predictions, want 1", len(pred.Predictions))
	}
}

// TestManagerDefaultPrecision pins the serve-level default knob: specs
// that omit precision inherit the manager's, explicit specs win, and
// unknown defaults are rejected at configuration time.
func TestManagerDefaultPrecision(t *testing.T) {
	mgr := NewManager(NewRegistry(), 1, "")
	if err := mgr.SetDefaultPrecision("bf16"); err == nil {
		t.Fatal("unknown default precision accepted")
	}
	if err := mgr.SetDefaultPrecision("f32"); err != nil {
		t.Fatal(err)
	}
	j, err := mgr.Submit(JobSpec{Model: "d", Dataset: "small", Epochs: 1, Step: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if st := j.Status(); st.State != StateDone {
		t.Fatalf("job state = %s (err %q)", st.State, st.Error)
	}
	m, ok := mgr.Registry().Get("d")
	if !ok {
		t.Fatal("model not published")
	}
	if dt := m.Store.DType(); dt != model.PrecisionF32 {
		t.Fatalf("default-precision job published dtype %q, want f32", dt)
	}
	// An explicit f64 spec overrides the f32 default.
	j2, err := mgr.Submit(JobSpec{Model: "d64", Dataset: "small", Epochs: 1, Step: 0.3, Precision: "f64"})
	if err != nil {
		t.Fatal(err)
	}
	<-j2.Done()
	m2, ok := mgr.Registry().Get("d64")
	if !ok {
		t.Fatal("f64 model not published")
	}
	if dt := m2.Store.DType(); dt != model.PrecisionF64 {
		t.Fatalf("explicit-f64 job published dtype %q, want f64", dt)
	}
}
