package serve

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/isasgd/isasgd/internal/model"
	"github.com/isasgd/isasgd/internal/snapshot"
	"github.com/isasgd/isasgd/internal/xrand"
)

func batcherFixture(t *testing.T, cfg BatcherConfig) (*Registry, *Batcher) {
	t.Helper()
	reg := NewRegistry()
	rng := xrand.New(7)
	w := make([]float64, 2048)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	if err := reg.Publish(&Model{Name: "m", Store: snapshot.Of(3, 99, w)}); err != nil {
		t.Fatal(err)
	}
	return reg, NewBatcher(reg, cfg)
}

// TestBatcherMatchesSequential is the micro-batch correctness contract:
// N concurrent predicts through the batcher return exactly the N results
// the unbatched registry returns sequentially, while the version is
// resolved far fewer than N times (the whole point of coalescing). Run
// under -race this also exercises the leader/follower handoff.
func TestBatcherMatchesSequential(t *testing.T) {
	reg, b := batcherFixture(t, BatcherConfig{Window: 20 * time.Millisecond, MaxBatch: 64})

	const n = 24
	batches := make([][]Instance, n)
	rng := xrand.New(11)
	for i := range batches {
		in := Instance{Indices: make([]int, 4), Values: make([]float64, 4)}
		for k := range in.Indices {
			in.Indices[k] = rng.Intn(2048)
			in.Values[k] = rng.NormFloat64()
		}
		batches[i] = []Instance{in}
	}

	want := make([][]Prediction, n)
	for i, batch := range batches {
		resp, err := reg.Predict("m", batch)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = append([]Prediction(nil), resp.Predictions...)
		resp.Release()
	}

	var (
		wg    sync.WaitGroup
		start = make(chan struct{})
		errs  = make([]error, n)
		got   = make([][]Prediction, n)
		seqs  = make([]uint64, n)
	)
	for i := range batches {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := b.Predict("m", batches[i])
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = append([]Prediction(nil), resp.Predictions...)
			seqs[i] = resp.Seq
			resp.Release()
		}(i)
	}
	close(start)
	wg.Wait()

	for i := range batches {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if len(got[i]) != len(want[i]) {
			t.Fatalf("goroutine %d: %d predictions, want %d", i, len(got[i]), len(want[i]))
		}
		for k := range want[i] {
			if got[i][k] != want[i][k] {
				t.Errorf("goroutine %d instance %d: batched %+v != sequential %+v",
					i, k, got[i][k], want[i][k])
			}
		}
		if want := reg.load()["m"].Store.Seq(); seqs[i] != want {
			t.Errorf("goroutine %d: scored against seq %d, want %d", i, seqs[i], want)
		}
	}
	if r := b.Resolves("m"); r >= n {
		t.Errorf("batcher resolved the version %d times for %d concurrent predicts — no coalescing", r, n)
	} else if r < 1 {
		t.Errorf("batcher reports %d resolves, want >= 1", r)
	}
}

// TestBatcherPerCallErrors confirms one bad request in a coalesced flush
// fails alone: its neighbors score normally.
func TestBatcherPerCallErrors(t *testing.T) {
	_, b := batcherFixture(t, BatcherConfig{Window: 10 * time.Millisecond, MaxBatch: 8})

	var wg sync.WaitGroup
	var goodErr, badErr error
	var good *PredictResponse
	wg.Add(2)
	go func() {
		defer wg.Done()
		good, goodErr = b.Predict("m", []Instance{{Indices: []int{1}, Values: []float64{1}}})
	}()
	go func() {
		defer wg.Done()
		// Mismatched lengths: validation must reject this call only.
		_, badErr = b.Predict("m", []Instance{{Indices: []int{1, 2}, Values: []float64{1}}})
	}()
	wg.Wait()
	if goodErr != nil {
		t.Fatalf("good call failed: %v", goodErr)
	}
	good.Release()
	if badErr == nil {
		t.Fatal("invalid instance passed through the batcher")
	}
}

// TestBatcherUnknownModel confirms unknown names answer ErrNotFound and
// do not leave a batcher behind (the map must not grow on probes).
func TestBatcherUnknownModel(t *testing.T) {
	_, b := batcherFixture(t, BatcherConfig{Window: time.Millisecond})
	if _, err := b.Predict("nope", []Instance{{Indices: []int{0}, Values: []float64{1}}}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if _, ok := (*b.models.Load())["nope"]; ok {
		t.Fatal("probe for an unknown model created a modelBatcher")
	}
}

// TestBatchedPredictZeroAlloc proves the micro-batched predict path
// stays 0 allocs/op on the steady state, matching the PR 4 guard on the
// unbatched path: pooled calls, pooled pending queues, a reused flush
// timer and the pooled response leave nothing per-op.
func TestBatchedPredictZeroAlloc(t *testing.T) {
	if model.RaceEnabled {
		t.Skip("allocation accounting is not meaningful under the race detector")
	}
	_, b := batcherFixture(t, BatcherConfig{Window: 50 * time.Microsecond, MaxBatch: 64})
	batch := []Instance{{Indices: []int{1, 2, 512}, Values: []float64{0.5, -1, 2}}}
	// Warm every pool on this path: calls, pending slices, responses.
	for i := 0; i < 8; i++ {
		resp, err := b.Predict("m", batch)
		if err != nil {
			t.Fatal(err)
		}
		resp.Release()
	}
	if n := testing.AllocsPerRun(300, func() {
		resp, err := b.Predict("m", batch)
		if err != nil {
			t.Fatal(err)
		}
		resp.Release()
	}); n != 0 {
		t.Fatalf("steady-state batched predict allocates %.1f objects/op, want 0", n)
	}
}
