package serve

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/isasgd/isasgd/internal/model"
	"github.com/isasgd/isasgd/internal/snapshot"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// replicaFixture starts a replicator mirroring origin into a fresh
// replica manager + read-only HTTP server, and tears everything down
// with the test.
func replicaFixture(t *testing.T, origin string) (*Manager, *httptest.Server) {
	t.Helper()
	mgr := NewManager(NewRegistry(), 1, t.TempDir())
	ts := httptest.NewServer(NewServerOpts(mgr, ServerOptions{ReadOnly: true}))
	t.Cleanup(ts.Close)

	repl, err := NewReplicator(ReplicatorConfig{
		Origin:     origin,
		Registry:   mgr.Registry(),
		Interval:   20 * time.Millisecond,
		PollWindow: 2 * time.Second,
		RetryBase:  10 * time.Millisecond,
		RetryCap:   100 * time.Millisecond,
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		repl.Run(ctx) //nolint:errcheck // always nil on ctx cancel
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return mgr, ts
}

// TestReplicaConvergence is the fleet's core e2e: an origin publishing
// versions (f64 and f32 models both) is mirrored by a replica that
// converges to the origin's exact Seq, scores bit-for-bit identically,
// reports its lag on /v1/models and /metrics, and refuses writes.
func TestReplicaConvergence(t *testing.T) {
	originMgr := NewManager(NewRegistry(), 1, t.TempDir())
	originTS := httptest.NewServer(NewServerOpts(originMgr, ServerOptions{
		ReplicateWindow: 150 * time.Millisecond,
	}))
	t.Cleanup(originTS.Close)

	w := make([]float64, 256)
	for i := range w {
		w[i] = float64(float32(i)*0.5 - 40) // exactly f32-representable, sign-mixed
	}
	st64 := snapshot.Of(1, 10, w)
	if err := originMgr.Registry().Publish(&Model{
		Name: "plain", Algo: "is-asgd", Objective: "logistic", Dataset: "d1", Store: st64,
	}); err != nil {
		t.Fatal(err)
	}
	st32 := f32Store(w)
	if err := originMgr.Registry().Publish(&Model{Name: "half", Store: st32}); err != nil {
		t.Fatal(err)
	}

	repMgr, repTS := replicaFixture(t, originTS.URL)

	// Publish a few more versions after replication starts — the replica
	// must track a moving origin, not just copy a static one.
	for e := 2; e <= 4; e++ {
		st64.PublishCopy(e, int64(e*10), w)
	}
	wantSeq := st64.Seq()

	waitFor(t, 10*time.Second, "replica to reach the origin's seq", func() bool {
		m, ok := repMgr.Registry().Get("plain")
		if !ok {
			return false
		}
		h, ok2 := repMgr.Registry().Get("half")
		return ok2 && m.Store.Seq() == wantSeq && h.Store.Seq() == st32.Seq()
	})

	// Metadata and dtype survived the wire.
	rm, _ := repMgr.Registry().Get("plain")
	if rm.Algo != "is-asgd" || rm.Objective != "logistic" || rm.Dataset != "d1" {
		t.Fatalf("replica model metadata = %q/%q/%q, want is-asgd/logistic/d1",
			rm.Algo, rm.Objective, rm.Dataset)
	}
	rh, _ := repMgr.Registry().Get("half")
	if rh.Store.DType() != model.PrecisionF32 {
		t.Fatalf("replica dtype = %v, want f32", rh.Store.DType())
	}

	// Predictions match the origin bit for bit, f32 model included.
	batch := []Instance{
		{Indices: []int{0, 3, 255}, Values: []float64{1, -0.5, 2.25}},
		{Indices: []int{7, 7, 130}, Values: []float64{0.125, 0.125, -3}},
	}
	for _, name := range []string{"plain", "half"} {
		or, err := originMgr.Registry().Predict(name, batch)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := repMgr.Registry().Predict(name, batch)
		if err != nil {
			t.Fatal(err)
		}
		if or.Seq != rr.Seq {
			t.Fatalf("%s: replica scored seq %d, origin seq %d", name, rr.Seq, or.Seq)
		}
		for i := range batch {
			if or.Predictions[i] != rr.Predictions[i] {
				t.Fatalf("%s instance %d: replica %+v != origin %+v",
					name, i, rr.Predictions[i], or.Predictions[i])
			}
		}
		or.Release()
		rr.Release()
	}

	// The replica's model list carries the fleet fields; the origin's
	// does not.
	var list []ModelInfo
	resp, err := http.Get(repTS.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	list = decodeBody[[]ModelInfo](t, resp)
	found := false
	for _, info := range list {
		if info.Name != "plain" {
			continue
		}
		found = true
		if !info.Replica {
			t.Error("replica /v1/models entry missing replica:true")
		}
		if info.Lag == nil {
			t.Error("replica /v1/models entry missing lag_seconds")
		} else if *info.Lag < 0 || *info.Lag > 60 {
			t.Errorf("lag_seconds = %v, want a small non-negative number", *info.Lag)
		}
	}
	if !found {
		t.Fatalf("model missing from replica /v1/models: %+v", list)
	}
	resp, err = http.Get(originTS.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range decodeBody[[]ModelInfo](t, resp) {
		if info.Replica || info.Lag != nil {
			t.Fatalf("origin /v1/models entry unexpectedly carries replica fields: %+v", info)
		}
	}

	// Replication telemetry is on the replica's scrape.
	if text := scrape(t, repTS.URL); !strings.Contains(text, `isasgd_replica_seq{model="plain"}`) ||
		!strings.Contains(text, `isasgd_replica_lag_seconds{model="plain"}`) {
		t.Fatalf("/metrics missing replication gauges; got:\n%s", text)
	}

	// Writes are refused on the replica (403), reads and predicts pass.
	wresp := postJSON(t, repTS.URL+"/v1/jobs", map[string]any{"model": "x", "dataset": "none"})
	if wresp.StatusCode != http.StatusForbidden {
		t.Fatalf("replica POST /v1/jobs status = %d, want 403", wresp.StatusCode)
	}
	wresp.Body.Close()
	req, _ := http.NewRequest(http.MethodDelete, repTS.URL+"/v1/models/plain", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if dresp.StatusCode != http.StatusForbidden {
		t.Fatalf("replica DELETE /v1/models status = %d, want 403", dresp.StatusCode)
	}
	dresp.Body.Close()
	presp := postJSON(t, repTS.URL+"/v1/models/plain/predict",
		map[string]any{"indices": []int{0}, "values": []float64{1}})
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("replica predict status = %d, want 200", presp.StatusCode)
	}
	presp.Body.Close()
}

// TestReplicaSurvivesOriginRestart pins the resync path: the origin dies
// mid-replication and comes back on the same address with its sequence
// reset to 1 (restarted without checkpoints). The replica must detect
// the regression, throw away its mirrored history, and converge on the
// new origin's state.
func TestReplicaSurvivesOriginRestart(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	startOrigin := func(ln net.Listener, weights []float64, versions int) (*Manager, *http.Server) {
		mgr := NewManager(NewRegistry(), 1, t.TempDir())
		st := snapshot.Of(1, 1, weights)
		for e := 2; e <= versions; e++ {
			st.PublishCopy(e, int64(e), weights)
		}
		if err := mgr.Registry().Publish(&Model{Name: "m", Store: st}); err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: NewServerOpts(mgr, ServerOptions{
			ReplicateWindow: 100 * time.Millisecond,
		})}
		go hs.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
		return mgr, hs
	}

	wA := []float64{1, 2, 3, 4}
	_, hsA := startOrigin(ln, wA, 3)

	repMgr, _ := replicaFixture(t, "http://"+addr)
	waitFor(t, 10*time.Second, "replica to mirror the first origin", func() bool {
		m, ok := repMgr.Registry().Get("m")
		return ok && m.Store.Seq() == 3
	})

	// Kill the origin. The replica's pullers now retry into a dead
	// address with backoff.
	if err := hsA.Close(); err != nil {
		t.Fatal(err)
	}

	// Bring a fresh origin up on the same address: one version, new
	// weights, sequence restarted at 1 — strictly behind the replica's
	// cursor.
	wB := []float64{-9, 8, -7, 6}
	var ln2 net.Listener
	waitFor(t, 10*time.Second, "origin address to rebind", func() bool {
		ln2, err = net.Listen("tcp", addr)
		return err == nil
	})
	_, hsB := startOrigin(ln2, wB, 1)
	t.Cleanup(func() { hsB.Close() })

	waitFor(t, 15*time.Second, "replica to resync onto the restarted origin", func() bool {
		m, ok := repMgr.Registry().Get("m")
		return ok && m.Store.Seq() == 1
	})
	m, _ := repMgr.Registry().Get("m")
	v := m.Store.Load()
	for i, want := range wB {
		if v.Weights[i] != want {
			t.Fatalf("replica weights[%d] = %v after resync, want %v (old origin's were %v)",
				i, v.Weights[i], want, wA[i])
		}
	}
}

// TestReplicateEndpoint covers the origin handler's contract directly:
// cursor semantics (weights only when behind), long-poll expiry, and the
// error statuses.
func TestReplicateEndpoint(t *testing.T) {
	mgr := NewManager(NewRegistry(), 1, t.TempDir())
	ts := httptest.NewServer(NewServerOpts(mgr, ServerOptions{
		ReplicateWindow: 80 * time.Millisecond,
	}))
	t.Cleanup(ts.Close)
	if err := mgr.Registry().Publish(&Model{Name: "m", Store: snapshot.Of(2, 5, []float64{1, 2})}); err != nil {
		t.Fatal(err)
	}

	// Behind cursor: full version with weights.
	resp, err := http.Get(ts.URL + "/v1/replicate?model=m&since=0")
	if err != nil {
		t.Fatal(err)
	}
	rr := decodeBody[ReplicateResponse](t, resp)
	if rr.Seq != 1 || len(rr.Weights) != 2 || rr.Epoch != 2 || rr.Iters != 5 {
		t.Fatalf("replicate since=0: %+v, want seq 1 with 2 weights", rr)
	}
	if rr.PublishedUnix <= 0 {
		t.Fatalf("replicate response missing publish timestamp: %+v", rr)
	}

	// At cursor: the long-poll expires and answers without weights.
	start := time.Now()
	resp, err = http.Get(ts.URL + "/v1/replicate?model=m&since=1")
	if err != nil {
		t.Fatal(err)
	}
	rr = decodeBody[ReplicateResponse](t, resp)
	if rr.Weights != nil || rr.Weights32 != nil || rr.Seq != 1 {
		t.Fatalf("replicate since=current: %+v, want seq 1 without weights", rr)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("empty poll answered in %v, want it held open to the window", elapsed)
	}

	for _, tc := range []struct {
		path string
		want int
	}{
		{"/v1/replicate", http.StatusBadRequest},                 // no model
		{"/v1/replicate?model=m&since=x", http.StatusBadRequest}, // bad cursor
		{"/v1/replicate?model=nope&since=0", http.StatusNotFound},
	} {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.want {
			t.Fatalf("GET %s: status %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
		resp.Body.Close()
	}
}
