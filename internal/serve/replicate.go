package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sync"
	"time"

	"github.com/isasgd/isasgd/internal/model"
	"github.com/isasgd/isasgd/internal/obs"
	"github.com/isasgd/isasgd/internal/snapshot"
	"github.com/isasgd/isasgd/internal/wire32"
	"github.com/isasgd/isasgd/internal/xrand"
)

// This file is the serving fleet's replication layer. The origin side is
// GET /v1/replicate (served by Server, see server.go): a per-model
// long-poll over snapshot.Store.Wait, the same primitive the cluster
// coordinator's pull endpoint is built on. The replica side is
// Replicator: a discovery loop that mirrors the origin's model list plus
// one puller goroutine per model that long-polls for fresher versions,
// republishes them into the local registry at the origin's sequence
// numbers (Store.Restore), and maintains the replication-lag telemetry.
//
// Replica-local models carry no objective implementation (the origin's
// objective arrives as a name, not code), so their labels fall back to
// sign(score) — which is exactly what every shipped objective's Predict
// computes, so replica predictions match the origin's bit for bit.

// ReplicatorConfig configures a replica's pull loop.
type ReplicatorConfig struct {
	// Origin is the base URL of the server to mirror, e.g.
	// "http://10.0.0.1:8080". Required.
	Origin string
	// Registry is the local registry mirrored models are published into.
	// Required.
	Registry *Registry
	// Interval is the model-list discovery cadence (new models appear,
	// deleted models withdraw, crashed pullers restart). Default 1s.
	Interval time.Duration
	// PollWindow is the client-side ceiling on one long-poll request;
	// it should exceed the origin's ReplicateWindow so the origin, not
	// the client, ends an empty poll. Default 40s.
	PollWindow time.Duration
	// RetryBase/RetryCap bound the exponential backoff (with jitter)
	// a puller sleeps between failed pulls — an origin restart is
	// survived by simply retrying into it. Defaults 100ms / 5s.
	RetryBase time.Duration
	RetryCap  time.Duration
	// Client is the HTTP client for all origin traffic; nil uses a
	// dedicated client with sane connection reuse.
	Client *http.Client
	// Log receives replication events; nil discards them.
	Log *slog.Logger
	// Seed seeds the backoff jitter.
	Seed uint64
}

func (c ReplicatorConfig) withDefaults() ReplicatorConfig {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.PollWindow <= 0 {
		c.PollWindow = 40 * time.Second
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 100 * time.Millisecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 5 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	if c.Log == nil {
		c.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// Replicator mirrors every model of an origin server into a local
// registry. Run drives a discovery loop (GET /v1/models on Interval)
// that starts one puller goroutine per model; each puller long-polls
// GET /v1/replicate?model=…&since=… and applies fresher versions with
// Store.Restore, preserving the origin's sequence numbers — a replica
// therefore converges to the origin's exact Seq, and a long-poll cursor
// survives both replica and origin restarts:
//
//   - transport errors retry forever with capped jittered backoff, so a
//     rebooting origin is rejoined as soon as it listens again;
//   - an origin that came back with a reset sequence (restarted without
//     its checkpoint) answers polls with Seq below the replica's cursor;
//     the puller detects the regression, re-pulls from 0 and republishes
//     the model over a fresh store.
//
// Telemetry (on the registry's obs): isasgd_replica_seq{model} — the
// last applied sequence number; isasgd_replica_lag_seconds{model} —
// origin publish → local apply for the newest version, 0 once a poll
// confirmed the replica is current; isasgd_replica_pulls_total{model,
// result=applied|current|reset|error}. The same lag surfaces per model
// on /v1/models (ModelInfo.Lag).
type Replicator struct {
	cfg ReplicatorConfig

	seqGauge *obs.GaugeVec
	lagGauge *obs.GaugeVec
	pulls    *obs.CounterVec

	mu      sync.Mutex
	pullers map[string]*puller
	wg      sync.WaitGroup
}

type puller struct {
	cancel context.CancelFunc
	done   chan struct{}
}

// NewReplicator validates cfg and registers the replication telemetry on
// the registry's metrics registry.
func NewReplicator(cfg ReplicatorConfig) (*Replicator, error) {
	if cfg.Origin == "" {
		return nil, fmt.Errorf("serve: replicator needs an origin URL")
	}
	if cfg.Registry == nil {
		return nil, fmt.Errorf("serve: replicator needs a registry")
	}
	if _, err := url.Parse(cfg.Origin); err != nil {
		return nil, fmt.Errorf("serve: bad origin URL %q: %w", cfg.Origin, err)
	}
	cfg = cfg.withDefaults()
	o := cfg.Registry.Obs()
	return &Replicator{
		cfg: cfg,
		seqGauge: o.GaugeVec("isasgd_replica_seq",
			"Last weight-version sequence number applied from the origin, per model.", "model"),
		lagGauge: o.GaugeVec("isasgd_replica_lag_seconds",
			"Replication lag: origin publish to local apply of the newest version (0 when confirmed current).", "model"),
		pulls: o.CounterVec("isasgd_replica_pulls_total",
			"Replication pulls by outcome.", "model", "result"),
		pullers: make(map[string]*puller),
	}, nil
}

// Run mirrors the origin until ctx ends, then stops every puller and
// returns nil (shutdown is the expected exit). Discovery failures are
// logged and retried on the next interval — they never abort the loop.
func (r *Replicator) Run(ctx context.Context) error {
	t := time.NewTicker(r.cfg.Interval)
	defer t.Stop()
	for {
		list, err := r.fetchModels(ctx)
		switch {
		case ctx.Err() != nil:
			// Fall through to shutdown below.
		case err != nil:
			r.cfg.Log.Warn("replica: model discovery failed", "origin", r.cfg.Origin, "error", err)
		default:
			r.reconcile(ctx, list)
		}
		select {
		case <-ctx.Done():
			r.mu.Lock()
			for _, p := range r.pullers {
				p.cancel()
			}
			r.mu.Unlock()
			r.wg.Wait()
			return nil
		case <-t.C:
		}
	}
}

// reconcile diffs the origin's model list against the running pullers:
// new names get a puller, vanished names lose theirs and the local copy.
func (r *Replicator) reconcile(ctx context.Context, list []ModelInfo) {
	want := make(map[string]bool, len(list))
	for _, info := range list {
		want[info.Name] = true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, p := range r.pullers {
		select {
		case <-p.done: // puller exited on its own; forget it, maybe restart below
			delete(r.pullers, name)
			continue
		default:
		}
		if !want[name] {
			p.cancel()
			delete(r.pullers, name)
			if r.cfg.Registry.Delete(name) {
				r.cfg.Log.Info("replica: model withdrawn (deleted on origin)", "model", name)
			}
		}
	}
	for name := range want {
		if _, ok := r.pullers[name]; ok {
			continue
		}
		pctx, cancel := context.WithCancel(ctx)
		p := &puller{cancel: cancel, done: make(chan struct{})}
		r.pullers[name] = p
		r.wg.Add(1)
		go func(name string) {
			defer r.wg.Done()
			defer close(p.done)
			r.pull(pctx, name)
		}(name)
	}
}

// fetchModels lists the origin's models.
func (r *Replicator) fetchModels(ctx context.Context) ([]ModelInfo, error) {
	rctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, r.cfg.Origin+"/v1/models", nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10)) //nolint:errcheck
		return nil, fmt.Errorf("origin answered %d", resp.StatusCode)
	}
	var list []ModelInfo
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&list); err != nil {
		return nil, err
	}
	return list, nil
}

// errOriginGone marks a 404 pull: the model no longer exists on the
// origin, so the puller withdraws the local copy and exits (discovery
// restarts one if the model reappears).
var errOriginGone = errors.New("model gone on origin")

// pull is one model's replication loop: long-poll, apply, repeat.
func (r *Replicator) pull(ctx context.Context, name string) {
	var (
		since   uint64
		store   *snapshot.Store
		local   *Model
		attempt int
		rng     = xrand.New(r.cfg.Seed ^ hashName(name))
		w       []float64 // decode buffer for f32 payloads, reused
	)
	log := r.cfg.Log.With("model", name, "origin", r.cfg.Origin)
	for ctx.Err() == nil {
		resp, err := r.pullOnce(ctx, name, since)
		if err != nil {
			if errors.Is(err, errOriginGone) {
				if r.cfg.Registry.Delete(name) {
					log.Info("replica: model withdrawn (gone on origin)")
				}
				return
			}
			if ctx.Err() != nil {
				return
			}
			attempt++
			r.pulls.With(name, "error").Inc()
			d := backoff(r.cfg.RetryBase, r.cfg.RetryCap, attempt, rng)
			log.Warn("replica: pull failed, backing off", "attempt", attempt, "backoff", d, "error", err)
			select {
			case <-ctx.Done():
				return
			case <-time.After(d):
			}
			continue
		}
		attempt = 0

		switch {
		case resp.Weights == nil && resp.Weights32 == nil:
			if resp.Seq < since {
				// The origin's sequence regressed below our cursor — it
				// restarted without its checkpoint. Rewind the cursor; the
				// next poll returns weights and the apply below swaps in a
				// fresh store.
				log.Warn("replica: origin sequence regressed, resyncing from scratch",
					"origin_seq", resp.Seq, "replica_seq", since)
				r.pulls.With(name, "reset").Inc()
				since = 0
				continue
			}
			// Poll window expired with nothing newer: we are current.
			r.pulls.With(name, "current").Inc()
			if local != nil {
				local.live.Store(resp.Live)
				local.setReplicaLag(0)
				r.lagGauge.With(name).Set(0)
			}
		default:
			if resp.Weights32 != nil {
				if w, err = wire32.DecodeWide(w, resp.Weights32); err != nil {
					log.Warn("replica: bad f32 payload", "error", err)
					r.pulls.With(name, "error").Inc()
					since = resp.Seq // do not re-pull the same broken version hot
					continue
				}
				resp.Weights = w
			}
			store, local = r.apply(log, name, resp, store, local)
			since = resp.Seq
		}
	}
}

// apply republishes one pulled version locally, swapping in a fresh
// store (and model entry) on first contact or after an origin reset.
// Returns the (possibly new) store/model pair.
func (r *Replicator) apply(log *slog.Logger, name string, resp *ReplicateResponse,
	store *snapshot.Store, local *Model) (*snapshot.Store, *Model) {
	if store == nil || store.Seq() >= resp.Seq {
		// First contact, or the origin restarted and its history begins
		// again below our store's seq (Restore refuses to regress, so the
		// reset takes a fresh store; in-flight predicts finish against the
		// version they already resolved).
		store = snapshot.NewStore()
		store.SetDType(resp.DType)
		local = nil
	}
	if _, err := store.Restore(resp.Seq, resp.Epoch, resp.Iters, resp.Weights); err != nil {
		log.Warn("replica: rejected pulled version", "seq", resp.Seq, "error", err)
		r.pulls.With(name, "error").Inc()
		return store, local
	}
	if local == nil {
		local = &Model{
			Name: name, Algo: resp.Algo, Objective: resp.Objective,
			Dataset: resp.Dataset, Store: store,
		}
		local.replica.Store(true)
		if err := r.cfg.Registry.Publish(local); err != nil {
			log.Warn("replica: publish failed", "error", err)
			r.pulls.With(name, "error").Inc()
			return store, nil
		}
	}
	local.live.Store(resp.Live)
	lag := time.Duration(0)
	if resp.PublishedUnix > 0 {
		lag = time.Since(time.Unix(0, resp.PublishedUnix))
		if lag < 0 {
			lag = 0
		}
	}
	local.setReplicaLag(lag)
	r.seqGauge.With(name).Set(float64(resp.Seq))
	r.lagGauge.With(name).Set(lag.Seconds())
	r.pulls.With(name, "applied").Inc()
	log.Debug("replica: applied version", "seq", resp.Seq, "lag", lag)
	return store, local
}

// pullOnce issues one long-poll.
func (r *Replicator) pullOnce(ctx context.Context, name string, since uint64) (*ReplicateResponse, error) {
	rctx, cancel := context.WithTimeout(ctx, r.cfg.PollWindow)
	defer cancel()
	u := fmt.Sprintf("%s/v1/replicate?model=%s&since=%d", r.cfg.Origin, url.QueryEscape(name), since)
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	hresp, err := r.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(hresp.Body, int64(maxBodyBytes)))
	if err != nil {
		return nil, err
	}
	switch hresp.StatusCode {
	case http.StatusOK:
		var resp ReplicateResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			return nil, fmt.Errorf("decoding replicate response: %w", err)
		}
		return &resp, nil
	case http.StatusNotFound:
		return nil, errOriginGone
	default:
		var eb errorBody
		_ = json.Unmarshal(body, &eb)
		if eb.Error == "" {
			eb.Error = http.StatusText(hresp.StatusCode)
		}
		return nil, fmt.Errorf("origin answered %d: %s", hresp.StatusCode, eb.Error)
	}
}

// backoff is min(cap, base·2^(attempt-1)) jittered uniformly over its
// upper half — the cluster worker's retry shape, reused here so
// simultaneously-disconnected replicas desynchronize their rejoins.
func backoff(base, cap time.Duration, attempt int, rng *xrand.Rand) time.Duration {
	d := base << uint(attempt-1)
	if d <= 0 || d > cap {
		d = cap
	}
	half := d / 2
	return half + time.Duration(rng.Float64()*float64(half))
}

// hashName is FNV-1a, seeding per-model jitter streams.
func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// replicateResponseFor renders the origin side of one replication poll:
// v (resolved by the handler, possibly after a Store.Wait) described
// with m's metadata, weights included only when the caller's cursor is
// behind. F32-stamped stores ship the compact packing of the version's
// cached float32 view — lossless for f32-trained weights.
func replicateResponseFor(m *Model, v *snapshot.Version, since uint64) ReplicateResponse {
	resp := ReplicateResponse{
		Model: m.Name, Algo: m.Algo, Objective: m.Objective, Dataset: m.Dataset,
		Seq: v.Seq, Epoch: v.Epoch, Iters: v.Iters,
		Live: m.Live(), DType: m.Store.DType(),
		PublishedUnix: v.At.UnixNano(),
	}
	if v.Seq > since {
		if resp.DType == model.PrecisionF32 {
			resp.Weights32 = wire32.AppendNarrow(nil, v.W32())
		} else {
			resp.Weights = v.Weights
		}
	}
	return resp
}
