package serve

import (
	"math"
	"testing"
)

// TestCompileBatchAdaptiveValidation pins the synchronous 400 surface
// for the adaptive knobs on batch jobs: stream-only fields, bad values
// and unsupported algo/precision/batch combinations must all fail at
// submission, while valid policies compile into the solver config.
func TestCompileBatchAdaptiveValidation(t *testing.T) {
	base := func() JobSpec { return JobSpec{Dataset: "small", Algo: "asgd"} }
	bad := map[string]func(*JobSpec){
		"importance on batch":  func(s *JobSpec) { s.Importance = "loss" },
		"loss_beta on batch":   func(s *JobSpec) { s.LossBeta = 0.5 },
		"NaN adapt_c":          func(s *JobSpec) { s.AdaptC = math.NaN() },
		"negative dc_lambda":   func(s *JobSpec) { s.DCLambda = -1 },
		"negative bound":       func(s *JobSpec) { s.StalenessBound = -4 },
		"adaptive on saga":     func(s *JobSpec) { s.Algo = "saga"; s.AdaptC = 0.1 },
		"adaptive with f32":    func(s *JobSpec) { s.Precision = "f32"; s.DCLambda = 0.1 },
		"adaptive + minibatch": func(s *JobSpec) { s.Batch = 8; s.StalenessBound = 16 },
	}
	for name, mutate := range bad {
		spec := base()
		mutate(&spec)
		if _, err := compile(spec, false, ""); err == nil {
			t.Errorf("%s: spec accepted, want error", name)
		}
	}

	spec := base()
	spec.AdaptC = 0.05
	spec.StalenessBound = 64
	spec.DCLambda = 0.02
	r, err := compile(spec, false, "")
	if err != nil {
		t.Fatal(err)
	}
	if r.cfg.AdaptC != 0.05 || r.cfg.StalenessBound != 64 || r.cfg.DCLambda != 0.02 {
		t.Fatalf("adaptive knobs not wired into solver config: %+v", r.cfg)
	}
}

// TestCompileStreamAdaptiveValidation pins the same surface for
// streaming jobs, including the importance-mode selector.
func TestCompileStreamAdaptiveValidation(t *testing.T) {
	base := func() JobSpec { return JobSpec{Kind: "stream", Dim: 8} }
	bad := map[string]func(*JobSpec){
		"unknown importance": func(s *JobSpec) { s.Importance = "entropy" },
		"loss with uniform":  func(s *JobSpec) { s.Importance = "loss"; s.Algo = "sgd" },
		"loss with f32":      func(s *JobSpec) { s.Importance = "loss"; s.Precision = "f32" },
		"dc_lambda on stream": func(s *JobSpec) {
			s.DCLambda = 0.1
		},
		"adaptive with f32": func(s *JobSpec) { s.AdaptC = 0.1; s.Precision = "f32" },
		"negative bound":    func(s *JobSpec) { s.StalenessBound = -1 },
		"Inf adapt_c":       func(s *JobSpec) { s.AdaptC = math.Inf(1) },
	}
	for name, mutate := range bad {
		spec := base()
		mutate(&spec)
		if _, err := compile(spec, true, ""); err == nil {
			t.Errorf("%s: spec accepted, want error", name)
		}
	}

	spec := base()
	spec.Importance = "loss"
	spec.LossBeta = 0.5
	spec.AdaptC = 0.1
	spec.StalenessBound = 32
	r, err := compile(spec, true, "")
	if err != nil {
		t.Fatal(err)
	}
	if r.stream == nil {
		t.Fatal("streaming spec did not compile a stream config")
	}
	if r.stream.Importance != "loss" || r.stream.LossBeta != 0.5 ||
		r.stream.AdaptC != 0.1 || r.stream.StalenessBound != 32 {
		t.Fatalf("adaptive knobs not wired into stream config: %+v", r.stream)
	}
}
