package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/isasgd/isasgd/internal/snapshot"
)

// testServer spins up the full HTTP stack over a fresh manager.
func testServer(t *testing.T, pool int) (*httptest.Server, *Manager, string) {
	t.Helper()
	dir := t.TempDir()
	mgr := NewManager(NewRegistry(), pool, dir)
	ts := httptest.NewServer(NewServer(mgr))
	t.Cleanup(ts.Close)
	return ts, mgr, dir
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return v
}

// pollJob polls GET /v1/jobs/{id} until the job is terminal.
func pollJob(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		st := decodeBody[JobStatus](t, resp)
		if st.State.Terminal() {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return JobStatus{}
}

// TestEndToEnd is the acceptance scenario: submit a Small-preset job,
// poll it to completion, check the convergence curve decreases, predict
// from the published model, export its checkpoint, re-import it under a
// new name, and verify the clone predicts identically.
func TestEndToEnd(t *testing.T) {
	ts, _, _ := testServer(t, 2)

	resp := postJSON(t, ts.URL+"/v1/jobs", JobSpec{
		Model: "demo", Dataset: "small", Algo: "is-asgd",
		Epochs: 8, Step: 0.5, Seed: 1,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	sub := decodeBody[JobStatus](t, resp)
	if sub.ID == "" || sub.Model != "demo" {
		t.Fatalf("unexpected submit response %+v", sub)
	}

	st := pollJob(t, ts.URL, sub.ID)
	if st.State != StateDone {
		t.Fatalf("job state = %s (err %q), want done", st.State, st.Error)
	}
	if st.Samples != 600 || st.Dim != 400 {
		t.Fatalf("job saw %d×%d, want 600×400", st.Samples, st.Dim)
	}

	// Convergence curve: epoch 0 through 8, objective decreasing.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/curve")
	if err != nil {
		t.Fatal(err)
	}
	curve := decodeBody[CurveResponse](t, resp)
	if len(curve.Curve) != 9 {
		t.Fatalf("curve has %d points, want 9", len(curve.Curve))
	}
	first, last := curve.Curve[0], curve.Curve[len(curve.Curve)-1]
	if !(last.Obj < first.Obj) {
		t.Fatalf("objective did not decrease: %g -> %g", first.Obj, last.Obj)
	}

	// The finished job published its model.
	resp, err = http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	models := decodeBody[[]ModelInfo](t, resp)
	if len(models) != 1 || models[0].Name != "demo" || models[0].Dim != 400 {
		t.Fatalf("models = %+v, want [demo dim=400]", models)
	}

	// Batched prediction.
	batch := PredictRequest{Instances: []Instance{
		{Indices: []int{0, 1, 2}, Values: []float64{1, -1, 0.5}},
		{Indices: []int{399, 7}, Values: []float64{2, 0.25}},
		{Indices: []int{100000}, Values: []float64{3}}, // OOV index scores 0
	}}
	resp = postJSON(t, ts.URL+"/v1/models/demo/predict", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status = %d", resp.StatusCode)
	}
	preds := decodeBody[PredictResponse](t, resp)
	if len(preds.Predictions) != 3 {
		t.Fatalf("got %d predictions, want 3", len(preds.Predictions))
	}
	for i, p := range preds.Predictions {
		if p.Label != 1 && p.Label != -1 {
			t.Fatalf("prediction %d label = %g, want ±1", i, p.Label)
		}
	}
	if preds.Predictions[2].Score != 0 {
		t.Fatalf("OOV-only instance score = %g, want 0", preds.Predictions[2].Score)
	}

	// Single-instance shorthand agrees with the batch form.
	resp = postJSON(t, ts.URL+"/v1/models/demo/predict", PredictRequest{
		Indices: []int{0, 1, 2}, Values: []float64{1, -1, 0.5},
	})
	single := decodeBody[PredictResponse](t, resp)
	if len(single.Predictions) != 1 || single.Predictions[0] != preds.Predictions[0] {
		t.Fatalf("single prediction %+v != batch prediction %+v",
			single.Predictions, preds.Predictions[0])
	}

	// Export the checkpoint, re-import under a new name, and verify the
	// clone scores identically.
	resp, err = http.Get(ts.URL + "/v1/models/demo/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	ckptBytes, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("export: status %d, err %v", resp.StatusCode, err)
	}
	req, err := http.NewRequest(http.MethodPut,
		ts.URL+"/v1/models/demo2/checkpoint", bytes.NewReader(ckptBytes))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	info := decodeBody[ModelInfo](t, resp)
	if info.Name != "demo2" || info.Dim != 400 {
		t.Fatalf("import response %+v", info)
	}
	resp = postJSON(t, ts.URL+"/v1/models/demo2/predict", batch)
	clone := decodeBody[PredictResponse](t, resp)
	for i := range preds.Predictions {
		if clone.Predictions[i].Score != preds.Predictions[i].Score {
			t.Fatalf("clone score %d = %g, want %g",
				i, clone.Predictions[i].Score, preds.Predictions[i].Score)
		}
	}

	// Telemetry surfaces.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsText, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`isasgd_jobs{state="done"} 1`,
		`isasgd_updates_total`,
		`isasgd_model_requests_total{model="demo"} 2`,
		`isasgd_model_predictions_total{model="demo"} 4`,
		`isasgd_model_qps{model="demo"}`,
		`isasgd_model_seq{model="demo",live="0"}`,
		`isasgd_model_predict_latency_seconds{model="demo",quantile="0.5"}`,
		`isasgd_model_predict_latency_seconds{model="demo",quantile="0.99"}`,
	} {
		if !strings.Contains(string(metricsText), want) {
			t.Errorf("metrics missing %q in:\n%s", want, metricsText)
		}
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health := decodeBody[map[string]any](t, resp)
	if health["status"] != "ok" {
		t.Fatalf("healthz = %+v", health)
	}
}

// TestInlineDataJob trains on an uploaded LibSVM payload.
func TestInlineDataJob(t *testing.T) {
	ts, _, _ := testServer(t, 1)
	data := "1 1:1 3:0.5\n-1 2:1\n1 1:0.4 2:0.1\n-1 3:0.9\n"
	resp := postJSON(t, ts.URL+"/v1/jobs", JobSpec{
		Model: "inline", Data: data, Algo: "sgd", Objective: "sqhinge-l2",
		Epochs: 20, Step: 0.3, Seed: 3,
	})
	sub := decodeBody[JobStatus](t, resp)
	if sub.Samples != 4 || sub.Dim != 3 {
		t.Fatalf("inline dataset parsed as %d×%d, want 4×3", sub.Samples, sub.Dim)
	}
	st := pollJob(t, ts.URL, sub.ID)
	if st.State != StateDone {
		t.Fatalf("job state = %s (err %q)", st.State, st.Error)
	}
	resp = postJSON(t, ts.URL+"/v1/models/inline/predict", PredictRequest{
		Indices: []int{0}, Values: []float64{1},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestAPIErrors covers the 4xx surface.
func TestAPIErrors(t *testing.T) {
	ts, _, _ := testServer(t, 1)
	cases := []struct {
		name string
		do   func() *http.Response
		code int
	}{
		{"unknown job", func() *http.Response {
			r, err := http.Get(ts.URL + "/v1/jobs/job-999999")
			if err != nil {
				t.Fatal(err)
			}
			return r
		}, http.StatusNotFound},
		{"unknown model predict", func() *http.Response {
			return postJSON(t, ts.URL+"/v1/models/ghost/predict",
				PredictRequest{Indices: []int{0}, Values: []float64{1}})
		}, http.StatusNotFound},
		{"no data source", func() *http.Response {
			return postJSON(t, ts.URL+"/v1/jobs", JobSpec{Algo: "sgd"})
		}, http.StatusBadRequest},
		{"both data sources", func() *http.Response {
			return postJSON(t, ts.URL+"/v1/jobs", JobSpec{Dataset: "small", Data: "1 1:1\n"})
		}, http.StatusBadRequest},
		{"bad preset", func() *http.Response {
			return postJSON(t, ts.URL+"/v1/jobs", JobSpec{Dataset: "news21"})
		}, http.StatusBadRequest},
		{"bad algo", func() *http.Response {
			return postJSON(t, ts.URL+"/v1/jobs", JobSpec{Dataset: "small", Algo: "adam"})
		}, http.StatusBadRequest},
		{"bad model name", func() *http.Response {
			return postJSON(t, ts.URL+"/v1/jobs", JobSpec{Dataset: "small", Model: "../evil"})
		}, http.StatusBadRequest},
		{"ragged instance", func() *http.Response {
			return postJSON(t, ts.URL+"/v1/models/ghost/predict",
				PredictRequest{Indices: []int{0, 1}, Values: []float64{1}})
		}, http.StatusNotFound}, // model checked before shape
		{"bad checkpoint import", func() *http.Response {
			req, err := http.NewRequest(http.MethodPut,
				ts.URL+"/v1/models/x/checkpoint", strings.NewReader("not a checkpoint"))
			if err != nil {
				t.Fatal(err)
			}
			r, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			return r
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp := tc.do()
		if resp.StatusCode != tc.code {
			body, _ := io.ReadAll(resp.Body)
			t.Errorf("%s: status = %d, want %d (body %s)", tc.name, resp.StatusCode, tc.code, body)
		}
		resp.Body.Close()
	}
}

// TestRestore verifies a new manager republishes models persisted by a
// previous one from the shared checkpoint directory.
func TestRestore(t *testing.T) {
	ts, mgr, dir := testServer(t, 1)
	resp := postJSON(t, ts.URL+"/v1/jobs", JobSpec{
		Model: "persisted", Dataset: "small", Algo: "sgd", Epochs: 3, Step: 0.5,
	})
	sub := decodeBody[JobStatus](t, resp)
	if st := pollJob(t, ts.URL, sub.ID); st.State != StateDone {
		t.Fatalf("job state = %s", st.State)
	}
	if _, ok := mgr.Registry().Get("persisted"); !ok {
		t.Fatal("model not published")
	}

	// A corrupt checkpoint alongside the good one must not block boot.
	if err := os.WriteFile(filepath.Join(dir, "corrupt.ckpt"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Second life: fresh registry + manager over the same directory.
	mgr2 := NewManager(NewRegistry(), 1, dir)
	n, skipped, err := mgr2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("restored %d models, want 1", n)
	}
	if len(skipped) != 1 || filepath.Base(skipped[0]) != "corrupt.ckpt" {
		t.Fatalf("skipped = %v, want [corrupt.ckpt]", skipped)
	}
	m, ok := mgr2.Registry().Get("persisted")
	if !ok || m.Dim() != 400 {
		t.Fatalf("restored model missing or wrong dim (%v)", ok)
	}
}

// TestHotSwap republishes a model under the same name while a reader
// holds the old version: both remain usable and the registry serves the
// new weights.
func TestHotSwap(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Publish(&Model{Name: "m", Store: snapshot.Of(1, 1, []float64{1, 0})}); err != nil {
		t.Fatal(err)
	}
	old, _ := reg.Get("m")
	if err := reg.Publish(&Model{Name: "m", Store: snapshot.Of(2, 2, []float64{0, 2})}); err != nil {
		t.Fatal(err)
	}
	in := Instance{Indices: []int{0, 1}, Values: []float64{1, 1}}
	if got := old.Predict(in).Score; got != 1 {
		t.Fatalf("old model score = %g, want 1", got)
	}
	cur, _ := reg.Get("m")
	if got := cur.Predict(in).Score; got != 2 {
		t.Fatalf("swapped model score = %g, want 2", got)
	}
	// The telemetry carried over the swap, and the response reports the
	// version it was scored against.
	resp, err := reg.Predict("m", []Instance{in})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Epoch != 2 || resp.Seq != 1 || resp.Live {
		t.Fatalf("predict version = seq %d epoch %d live %v, want 1/2/false",
			resp.Seq, resp.Epoch, resp.Live)
	}
	resp.Release()
	infos := reg.List()
	if len(infos) != 1 || infos[0].Requests != 1 || infos[0].Predictions != 1 {
		t.Fatalf("List = %+v, want one model with 1 request / 1 prediction", infos)
	}
}

// TestPublishValidation rejects unservable models.
func TestPublishValidation(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Publish(&Model{Store: snapshot.Of(0, 0, []float64{1})}); err == nil {
		t.Fatal("Publish accepted an unnamed model")
	}
	if err := reg.Publish(&Model{Name: "m"}); err == nil {
		t.Fatal("Publish accepted a model with no store")
	}
	if err := reg.Publish(&Model{Name: "m", Store: snapshot.NewStore()}); err == nil {
		t.Fatal("Publish accepted a model with an empty store")
	}
}

func ExampleInstance() {
	m := &Model{Name: "ex", Store: snapshot.Of(0, 0, []float64{0.5, -0.25})}
	p := m.Predict(Instance{Indices: []int{0, 1}, Values: []float64{2, 4}})
	fmt.Printf("score=%g label=%g\n", p.Score, p.Label)
	// Output: score=0 label=1
}
