package serve

import (
	"bytes"
	"fmt"
	"mime/multipart"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/isasgd/isasgd/internal/xrand"
)

// streamCorpus writes an n-row LibSVM corpus with a simple separable
// concept over dim features.
func streamCorpus(t *testing.T, n, dim int, seed uint64) string {
	t.Helper()
	rng := xrand.New(seed)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		j := rng.Intn(dim)
		v := rng.NormFloat64()
		y := 1
		if v < 0 {
			y = -1
		}
		fmt.Fprintf(&sb, "%d %d:%.6f\n", y, j+1, v)
	}
	return sb.String()
}

func writeCorpusFile(t *testing.T, corpus string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "stream.libsvm")
	if err := os.WriteFile(path, []byte(corpus), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func streamSpec(path string) JobSpec {
	return JobSpec{
		Kind: "stream", Path: path, Model: "stream-model",
		Dim: 16, BlockSize: 64, WindowBlocks: 2, Threads: 2, Seed: 7,
	}
}

// TestStreamJobFromPath runs the asynchronous file-fed streaming path
// end to end: submit, poll, inspect the per-block curve, and predict
// from the published model.
func TestStreamJobFromPath(t *testing.T) {
	ts, mgr, dir := testServer(t, 2)
	path := writeCorpusFile(t, streamCorpus(t, 512, 16, 3))
	mgr.SetStreamRoot(filepath.Dir(path))

	resp := postJSON(t, ts.URL+"/v1/jobs", streamSpec(path))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	st := decodeBody[JobStatus](t, resp)
	if st.Kind != "stream" {
		t.Fatalf("job kind %q, want stream", st.Kind)
	}

	final := pollJob(t, ts.URL, st.ID)
	if final.State != StateDone {
		t.Fatalf("job finished %s (%s)", final.State, final.Error)
	}
	if final.Samples != 512 || final.Dim != 16 {
		t.Fatalf("final status samples=%d dim=%d, want 512/16", final.Samples, final.Dim)
	}
	if final.Epoch != 8 { // 512 rows / 64-row blocks
		t.Fatalf("final Epoch (blocks) = %d, want 8", final.Epoch)
	}
	if final.Iters == 0 {
		t.Fatalf("no updates recorded: %+v", final)
	}

	// The per-block curve must exist and end at the final block.
	curveResp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/curve")
	if err != nil {
		t.Fatal(err)
	}
	curve := decodeBody[CurveResponse](t, curveResp)
	if len(curve.Curve) != 8 {
		t.Fatalf("curve has %d points, want 8", len(curve.Curve))
	}

	// The model is published and predicts.
	pResp := postJSON(t, ts.URL+"/v1/models/stream-model/predict", PredictRequest{
		Indices: []int{3}, Values: []float64{1.5},
	})
	if pResp.StatusCode != http.StatusOK {
		t.Fatalf("predict: status %d", pResp.StatusCode)
	}
	pr := decodeBody[PredictResponse](t, pResp)
	if len(pr.Predictions) != 1 {
		t.Fatalf("got %d predictions", len(pr.Predictions))
	}

	// The checkpoint landed on disk under the model name.
	if _, err := os.Stat(filepath.Join(dir, "stream-model.ckpt")); err != nil {
		t.Fatalf("stream checkpoint missing: %v", err)
	}
}

// TestStreamUploadMultipart trains during a multipart upload and
// returns the terminal status synchronously.
func TestStreamUploadMultipart(t *testing.T) {
	ts, _, _ := testServer(t, 2)
	corpus := streamCorpus(t, 256, 16, 5)

	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	spec := streamSpec("")
	spec.Path = ""
	spec.Model = "upload-model"
	sp, err := mw.CreateFormField("spec")
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(sp, `{"kind":"stream","model":"upload-model","dim":16,"block_size":64,"threads":2,"seed":7}`)
	dp, err := mw.CreateFormFile("data", "corpus.libsvm")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dp.Write([]byte(corpus)); err != nil {
		t.Fatal(err)
	}
	mw.Close()

	resp, err := http.Post(ts.URL+"/v1/jobs/stream", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	st := decodeBody[JobStatus](t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %+v", resp.StatusCode, st)
	}
	if st.State != StateDone || st.Samples != 256 {
		t.Fatalf("terminal status %+v", st)
	}
	// Model served under the requested name.
	mResp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	models := decodeBody[[]ModelInfo](t, mResp)
	found := false
	for _, m := range models {
		if m.Name == "upload-model" && m.Iters > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("upload-model not published: %+v", models)
	}
}

// TestStreamUploadRawBody covers the non-multipart encoding: raw LibSVM
// body plus a JSON spec query parameter.
func TestStreamUploadRawBody(t *testing.T) {
	ts, _, _ := testServer(t, 1)
	corpus := streamCorpus(t, 128, 8, 9)
	url := ts.URL + `/v1/jobs/stream?spec={"kind":"stream","dim":8,"block_size":32,"seed":1}`
	resp, err := http.Post(url, "text/plain", strings.NewReader(corpus))
	if err != nil {
		t.Fatal(err)
	}
	st := decodeBody[JobStatus](t, resp)
	if resp.StatusCode != http.StatusOK || st.State != StateDone {
		t.Fatalf("status %d, job %+v", resp.StatusCode, st)
	}
	if st.Epoch != 4 { // 128 rows / 32-row blocks
		t.Fatalf("Epoch = %d, want 4", st.Epoch)
	}
}

func TestCompileStreamValidation(t *testing.T) {
	root := t.TempDir()
	path := filepath.Join(root, "ok.libsvm")
	if err := os.WriteFile(path, []byte("+1 1:1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	base := func() JobSpec { return JobSpec{Kind: "stream", Path: path, Dim: 8} }
	cases := map[string]JobSpec{
		"missing dim":           {Kind: "stream", Path: path},
		"missing source":        {Kind: "stream", Dim: 8},
		"dataset on stream":     func() JobSpec { s := base(); s.Dataset = "small"; return s }(),
		"epochs on stream":      func() JobSpec { s := base(); s.Epochs = 3; return s }(),
		"batch on stream":       func() JobSpec { s := base(); s.Batch = 4; return s }(),
		"bad algo":              func() JobSpec { s := base(); s.Algo = "svrg-sgd"; return s }(),
		"bad kind":              {Kind: "bogus", Dataset: "small"},
		"negative rebuild":      func() JobSpec { s := base(); s.RebuildEvery = -1; return s }(),
		"stream field on batch": {Dataset: "small", Dim: 8},
		"missing path file":     {Kind: "stream", Path: filepath.Join(root, "absent.libsvm"), Dim: 8},
		"path escapes root":     {Kind: "stream", Path: filepath.Join(root, "..", "escape.libsvm"), Dim: 8},
		"path outside root":     {Kind: "stream", Path: "/etc/passwd", Dim: 8},
	}
	for name, spec := range cases {
		if _, err := compile(spec, false, root); err == nil {
			t.Errorf("compile(%s) accepted an invalid spec", name)
		}
	}
	// A symlink inside the root pointing outside it must not smuggle
	// reads past the containment check.
	outside := filepath.Join(t.TempDir(), "secret.libsvm")
	if err := os.WriteFile(outside, []byte("+1 1:1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	link := filepath.Join(root, "evil.libsvm")
	if err := os.Symlink(outside, link); err == nil {
		if _, err := compile(JobSpec{Kind: "stream", Path: link, Dim: 8}, false, root); err == nil {
			t.Error("symlink escaping the stream root was accepted")
		}
	}
	// Without a configured stream root, every file-fed spec is rejected.
	if _, err := compile(base(), false, ""); err == nil {
		t.Error("file-fed stream spec accepted with no stream root configured")
	}
	// Upload-fed compile must not require a path (or a root).
	if _, err := compile(JobSpec{Kind: "stream", Dim: 8}, true, ""); err != nil {
		t.Errorf("body-fed stream spec rejected: %v", err)
	}
	// A root-relative path resolves under the root.
	if _, err := compile(JobSpec{Kind: "stream", Path: "ok.libsvm", Dim: 8}, false, root); err != nil {
		t.Errorf("root-relative path rejected: %v", err)
	}
	// And a valid file-fed spec compiles with the uniform baseline algo;
	// sequential algos clamp to one worker exactly like the CLI.
	s := base()
	s.Algo = "asgd"
	r, err := compile(s, false, root)
	if err != nil {
		t.Fatalf("valid stream spec rejected: %v", err)
	}
	if r.stream == nil || !r.stream.Uniform {
		t.Fatalf("asgd stream spec should compile to a uniform trainer config")
	}
	s = base()
	s.Algo = "is-sgd"
	s.Threads = 8
	if r, err = compile(s, false, root); err != nil {
		t.Fatalf("is-sgd stream spec rejected: %v", err)
	}
	if r.stream.Workers != 1 {
		t.Fatalf("is-sgd compiled to %d workers, want 1", r.stream.Workers)
	}
}
