// Package serve is the training-job and prediction service behind
// cmd/isasgd-serve: a stdlib-only net/http API that runs asynchronous
// training jobs on a bounded worker pool (solver.Train with context
// cancellation, incremental convergence reporting through
// solver.Config.Progress, checkpoint persistence) and serves online
// predictions from a lock-free, copy-on-write model registry backed by
// versioned weight snapshots (internal/snapshot): jobs publish
// mid-training versions while they run — live models hot-advance under
// concurrent predictions — and the request hot path is two atomic loads
// with zero steady-state allocations.
//
// Endpoints:
//
//	POST   /v1/jobs                      submit a training job
//	POST   /v1/jobs/stream               stream a LibSVM upload through online training
//	GET    /v1/jobs                      list jobs
//	GET    /v1/jobs/{id}                 job status
//	GET    /v1/jobs/{id}/curve           convergence curve so far
//	DELETE /v1/jobs/{id}                 cancel a queued/running job
//	GET    /v1/models                    list published models
//	POST   /v1/models/{name}/predict     score sparse instances
//	GET    /v1/models/{name}/checkpoint  export model as a checkpoint
//	PUT    /v1/models/{name}/checkpoint  import a checkpoint as a model
//	GET    /v1/replicate                 long-poll one model's newest weight version
//	GET    /healthz                      liveness + basic counters
//	GET    /metrics                      Prometheus-style text metrics
//
// The serving fleet grows horizontally from these pieces: an origin
// process (training jobs enabled) exposes /v1/replicate, and replica
// processes (Replicator, cmd/isasgd-serve -origin) long-poll it, mirror
// every published model into their own registries and serve the read
// traffic — see replicate.go. Predict handling can additionally coalesce
// concurrent requests per model (Batcher) and shed load past a bounded
// per-model admission queue (Admission) — see ServerOptions.
package serve

import (
	"fmt"
	"time"

	"github.com/isasgd/isasgd/internal/metrics"
)

// JobSpec is the POST /v1/jobs request body.
//
// Batch jobs (Kind "" or "batch") require exactly one data source:
// Dataset (a synthetic preset name: small, news20s, urls, kddas, kddbs)
// or Data (an inline LibSVM payload). Zero-valued solver fields select
// the same defaults as cmd/isasgd-train.
//
// Streaming jobs (Kind "stream") train online over a chunked LibSVM
// stream with internal/stream's sliding-window trainer: the source is
// either Path (a server-side file, trained asynchronously like any job)
// or the request body of POST /v1/jobs/stream (trained while the upload
// is in flight). Dim is required — a streaming model cannot grow
// mid-stream. Algo selects the sampler: sgd/asgd train with uniform
// draws, is-sgd/is-asgd (the default) with online importance sampling.
type JobSpec struct {
	// Model is the registry name the finished job publishes under;
	// defaults to the job id.
	Model string `json:"model,omitempty"`

	Kind string `json:"kind,omitempty"` // ""|"batch"|"stream"

	Dataset string  `json:"dataset,omitempty"` // synthetic preset name
	Scale   float64 `json:"scale,omitempty"`   // preset scale in (0,1]; default 1
	Data    string  `json:"data,omitempty"`    // inline LibSVM payload
	MinDim  int     `json:"min_dim,omitempty"` // minimum dim for inline data

	// Streaming source and window geometry (Kind "stream").
	Path            string `json:"path,omitempty"`              // server-side LibSVM file
	Dim             int    `json:"dim,omitempty"`               // fixed model dim; required
	BlockSize       int    `json:"block_size,omitempty"`        // rows per chunk; default 1024
	WindowBlocks    int    `json:"window_blocks,omitempty"`     // resident blocks; default 4
	UpdatesPerBlock int    `json:"updates_per_block,omitempty"` // update budget per chunk; default block rows
	Reservoir       int    `json:"reservoir,omitempty"`         // per-worker ISState capacity
	RebuildEvery    int    `json:"rebuild_every,omitempty"`     // alias rebuild cadence; default once per block

	// Adaptive update knobs (internal/adaptive). Importance selects the
	// streaming sampler's row weighting — "" or "bound" for the static
	// Lipschitz upper bound, "loss" for loss-feedback re-weighting
	// (streaming jobs only; incompatible with the uniform algos and f32).
	// LossBeta is the loss-EMA observation weight for "loss" (0 selects
	// the default). AdaptC attenuates stale updates by 1/(1+c·τ) and
	// StalenessBound sheds updates with measured τ over the bound; both
	// apply to streaming jobs and to batch Engine algos (sgd/asgd/
	// is-sgd/is-asgd, f64, batch ≤ 1). DCLambda enables DC-ASGD delay
	// compensation on batch Engine jobs only.
	Importance     string  `json:"importance,omitempty"`
	LossBeta       float64 `json:"loss_beta,omitempty"`
	AdaptC         float64 `json:"adapt_c,omitempty"`
	StalenessBound int64   `json:"staleness_bound,omitempty"`
	DCLambda       float64 `json:"dc_lambda,omitempty"`

	Algo      string  `json:"algo,omitempty"`      // default is-asgd
	Objective string  `json:"objective,omitempty"` // logistic-l1|sqhinge-l2|lsq-l2
	Precision string  `json:"precision,omitempty"` // f64 (default) | f32; f32 trains half-width weights/features (not for svrg-*/saga)
	Eta       float64 `json:"eta,omitempty"`       // regularization; default 1e-4
	Epochs    int     `json:"epochs,omitempty"`    // default 10
	Step      float64 `json:"step,omitempty"`      // default 0.5
	StepDecay float64 `json:"step_decay,omitempty"`
	Threads   int     `json:"threads,omitempty"`
	Balance   string  `json:"balance,omitempty"` // auto|balance|shuffle|sorted|lpt
	Batch     int     `json:"batch,omitempty"`
	Seed      uint64  `json:"seed,omitempty"`
	EvalEvery int     `json:"eval_every,omitempty"` // curve granularity; default 1
}

// JobState is the lifecycle phase of a job.
type JobState string

// Job lifecycle states. Queued jobs wait for a worker-pool slot; exactly
// one of the three terminal states (done, failed, cancelled) is reached.
const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// JobStatus is the GET /v1/jobs/{id} response body. For streaming jobs
// (Kind "stream") Epochs/Epoch count ingested blocks and the objective
// fields report the sliding-window evaluation after the last block.
type JobStatus struct {
	ID    string   `json:"id"`
	Model string   `json:"model"`
	Kind  string   `json:"kind,omitempty"`
	State JobState `json:"state"`
	// RequestID is the X-Request-ID of the submitting HTTP request,
	// stamped through the job's structured log lines for tracing.
	RequestID string     `json:"request_id,omitempty"`
	Algo      string     `json:"algo"`
	Objective string     `json:"objective"`
	Dataset   string     `json:"dataset"`
	Samples   int        `json:"samples"`
	Dim       int        `json:"dim"`
	Epochs    int        `json:"epochs"` // requested
	Epoch     int        `json:"epoch"`  // last evaluated
	Iters     int64      `json:"iters"`
	Obj       float64    `json:"objective_value"`
	ErrRate   float64    `json:"err_rate"`
	Error     string     `json:"error,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
}

// CurvePoint is one JSON-rendered convergence record.
type CurvePoint struct {
	Epoch   int     `json:"epoch"`
	Iters   int64   `json:"iters"`
	WallSec float64 `json:"wall_sec"`
	Obj     float64 `json:"obj"`
	RMSE    float64 `json:"rmse"`
	ErrRate float64 `json:"err_rate"`
	BestErr float64 `json:"best_err"`
}

// CurveResponse is the GET /v1/jobs/{id}/curve response body.
type CurveResponse struct {
	ID    string       `json:"id"`
	State JobState     `json:"state"`
	Curve []CurvePoint `json:"curve"`
}

func curvePoints(c metrics.Curve) []CurvePoint {
	out := make([]CurvePoint, len(c))
	for i, p := range c {
		out[i] = CurvePoint{
			Epoch: p.Epoch, Iters: p.Iters, WallSec: p.Wall.Seconds(),
			Obj: p.Obj, RMSE: p.RMSE, ErrRate: p.ErrRate, BestErr: p.BestErr,
		}
	}
	return out
}

// Instance is one sparse feature vector in coordinate form. Indices are
// 0-based model coordinates; Indices and Values must have equal length.
// Indices at or beyond the model dimensionality are ignored (they
// contribute 0, the standard treatment of out-of-vocabulary features in
// linear-model serving); negative indices are rejected.
type Instance struct {
	Indices []int     `json:"indices"`
	Values  []float64 `json:"values"`
}

// Validate checks the coordinate-form shape (equal lengths, no negative
// indices); dimensionality is not checked here — out-of-range indices
// are ignored at scoring time (see Model.Predict).
func (in Instance) Validate() error {
	if len(in.Indices) != len(in.Values) {
		return fmt.Errorf("indices length %d != values length %d", len(in.Indices), len(in.Values))
	}
	for _, j := range in.Indices {
		if j < 0 {
			return fmt.Errorf("negative feature index %d", j)
		}
	}
	return nil
}

// PredictRequest is the POST /v1/models/{name}/predict request body.
// Either Instances (batched) or the inline Indices/Values pair (single)
// must be set.
type PredictRequest struct {
	Instances []Instance `json:"instances,omitempty"`
	// Single-instance shorthand.
	Indices []int     `json:"indices,omitempty"`
	Values  []float64 `json:"values,omitempty"`
}

// Prediction is one scored instance: the raw linear score w·x and the
// objective's ±1 label.
type Prediction struct {
	Score float64 `json:"score"`
	Label float64 `json:"label"`
}

// PredictResponse is the POST /v1/models/{name}/predict response body.
// Seq/Epoch/Iters identify the weight version (internal/snapshot) the
// whole batch was scored against — one consistent snapshot per request.
// Live reports that the model's training job was still running when the
// version was resolved, i.e. the weights hot-advance between requests.
type PredictResponse struct {
	Model       string       `json:"model"`
	Seq         uint64       `json:"seq"`
	Epoch       int          `json:"epoch"`
	Iters       int64        `json:"iters"`
	Live        bool         `json:"live"`
	Predictions []Prediction `json:"predictions"`
}

// ModelInfo is one entry of the GET /v1/models response. Seq and Live
// describe the snapshot pipeline: Seq is the current weight version's
// publication sequence number and Live marks a model whose training job
// is still publishing fresher versions (Epoch/Iters/Seq advance between
// calls).
type ModelInfo struct {
	Name        string    `json:"name"`
	Algo        string    `json:"algo"`
	Objective   string    `json:"objective"`
	Dataset     string    `json:"dataset"`
	Dim         int       `json:"dim"`
	Epoch       int       `json:"epoch"`
	Iters       int64     `json:"iters"`
	Seq         uint64    `json:"seq"`
	Live        bool      `json:"live"`
	DType       string    `json:"dtype,omitempty"` // weight storage precision of the training run: f64 | f32
	Published   time.Time `json:"published"`
	Requests    int64     `json:"requests"`    // predict requests served
	Predictions int64     `json:"predictions"` // instances scored (batch sizes summed)
	QPS         float64   `json:"qps"`         // average predict requests/sec

	// Replica marks a model maintained by a Replicator pulling from an
	// origin server rather than by a local training job; Lag is then the
	// replication lag in seconds — how far behind the origin's publish
	// the local copy applied its newest version (0 once the replica has
	// confirmed it is current). Absent on origin-owned models.
	Replica bool     `json:"replica,omitempty"`
	Lag     *float64 `json:"lag_seconds,omitempty"`
}

// ReplicateResponse answers GET /v1/replicate?model=name&since=seq — one
// model's newest weight version, long-polled: the origin blocks until its
// store holds a version with Seq > since (or its poll window expires, in
// which case Weights/Weights32 are omitted and Seq describes the version
// the caller should already hold). Models whose training run stamped f32
// storage precision ship Weights32 — the compact little-endian float32
// packing (internal/wire32), ~¼ of the textual float64 payload and
// lossless for f32-trained weights — instead of Weights. PublishedUnix
// is the origin's wall clock at the version's publish, the reference
// point for the replica's lag gauges.
type ReplicateResponse struct {
	Model         string    `json:"model"`
	Algo          string    `json:"algo,omitempty"`
	Objective     string    `json:"objective,omitempty"`
	Dataset       string    `json:"dataset,omitempty"`
	Seq           uint64    `json:"seq"`
	Epoch         int       `json:"epoch"`
	Iters         int64     `json:"iters"`
	Live          bool      `json:"live"`
	DType         string    `json:"dtype,omitempty"`
	PublishedUnix int64     `json:"published_unix_nano,omitempty"`
	Weights       []float64 `json:"weights,omitempty"`
	Weights32     []byte    `json:"weights32,omitempty"` // LE float32 packing (f32-stamped stores)
}

// errorBody is the JSON error envelope every non-2xx response uses.
type errorBody struct {
	Error string `json:"error"`
}
