package serve

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/isasgd/isasgd/internal/checkpoint"
	"github.com/isasgd/isasgd/internal/kernel"
	"github.com/isasgd/isasgd/internal/model"
	"github.com/isasgd/isasgd/internal/objective"
	"github.com/isasgd/isasgd/internal/obs"
	"github.com/isasgd/isasgd/internal/snapshot"
)

// Model is a published model: immutable identity and metadata plus a
// versioned weight store (internal/snapshot). The metadata fields are
// fixed at publication; the weights advance through Store as the owning
// training job publishes fresher versions — a model marked live serves
// mid-training snapshots that hot-advance until the job completes.
// Predictions resolve the current Version once and score against its
// immutable weights, so a whole batch is answered from one consistent
// snapshot without any synchronization beyond a single atomic load.
type Model struct {
	Name      string
	Algo      string
	Objective string
	Dataset   string
	Published time.Time

	// Store holds the versioned weights; it must be non-empty (at least
	// one published version) before the model enters a Registry.
	Store *snapshot.Store

	// obj, when non-nil, maps scores to labels with the training
	// objective's Predict; checkpoint-imported models fall back to
	// sign(score), which is what all shipped objectives implement.
	obj objective.Objective

	// live is set while the owning training job is still publishing
	// versions; flipped off (without republication — the registry map is
	// untouched) when the job reaches its terminal state.
	live atomic.Bool

	// replica marks a model maintained by a Replicator pulling from an
	// origin server; lagBits then holds the replication lag in seconds
	// (float64 bits) — origin publish to local apply for the newest
	// version, 0 once a long-poll confirmed the copy is current. Both
	// atomic: the replicator's puller goroutine writes them while List
	// and /metrics scrapes read.
	replica atomic.Bool
	lagBits atomic.Uint64

	// Telemetry cells bound from the owning registry's obs vecs at
	// publication time (set-once, see publishReplacing): the predict hot
	// path touches pre-resolved atomic instruments, never a vec lookup.
	requests *obs.Counter   // predict requests served
	preds    *obs.Counter   // instances scored (batch sizes summed)
	lat      *obs.Histogram // predict latency
}

// Version returns the model's current weight snapshot (nil only before
// the model was ever published, which a Registry never exposes).
func (m *Model) Version() *snapshot.Version { return m.Store.Load() }

// Live reports whether the model's owning job is still training (its
// versions hot-advance).
func (m *Model) Live() bool { return m.live.Load() }

// Latency returns the model's predict-latency histogram (nil before the
// model entered a registry).
func (m *Model) Latency() *obs.Histogram { return m.lat }

// setReplicaLag records one replication-lag observation (and marks the
// model replica-maintained); negative lags — clock skew between origin
// and replica hosts — clamp to 0.
func (m *Model) setReplicaLag(d time.Duration) {
	if d < 0 {
		d = 0
	}
	m.replica.Store(true)
	m.lagBits.Store(math.Float64bits(d.Seconds()))
}

// ReplicaLag returns the model's last recorded replication lag in
// seconds; ok is false for models not maintained by a Replicator.
func (m *Model) ReplicaLag() (seconds float64, ok bool) {
	if !m.replica.Load() {
		return 0, false
	}
	return math.Float64frombits(m.lagBits.Load()), true
}

// Dim returns the current version's dimensionality.
func (m *Model) Dim() int {
	if v := m.Store.Load(); v != nil {
		return v.Dim()
	}
	return 0
}

// Predict scores one validated instance against the model's current
// version. Out-of-range indices contribute 0 (see Instance). Batch
// callers should resolve the version once via the Registry's Predict,
// which also answers the whole batch from a single snapshot.
func (m *Model) Predict(in Instance) Prediction {
	v := m.Store.Load()
	if v == nil {
		return Prediction{}
	}
	return m.predictAt(v, in)
}

// predictAt scores one instance against a resolved version with the
// shared devirtualized sparse dot (internal/kernel). Models whose
// training run stored float32 weights (Store.DType) score against the
// version's cached float32 view instead: the dot still accumulates in
// float64 and the f32-trained weights widen exactly, so the score is
// bitwise-identical to the float64 path while loading half the weight
// bytes. Allocation-free after the version's first f32 predict (W32
// materializes once per version).
func (m *Model) predictAt(v *snapshot.Version, in Instance) Prediction {
	var score float64
	if m.Store.DType() == model.PrecisionF32 {
		score = kernel.DotClampedInts32(v.W32(), in.Indices, in.Values)
	} else {
		score = kernel.DotClampedInts(v.Weights, in.Indices, in.Values)
	}
	label := 1.0
	if m.obj != nil {
		label = m.obj.Predict(score)
	} else if score < 0 {
		label = -1
	}
	return Prediction{Score: score, Label: label}
}

// Checkpoint renders the model's current version as a persistable
// training state, with a defensive copy of the weights.
func (m *Model) Checkpoint() *checkpoint.State {
	v := m.Store.Load()
	w := make([]float64, len(v.Weights))
	copy(w, v.Weights)
	return &checkpoint.State{
		Algo:      m.Algo,
		Objective: m.Objective,
		Dataset:   m.Dataset,
		Epoch:     v.Epoch,
		Iters:     v.Iters,
		Dim:       len(w),
		Weights:   w,
	}
}

// ModelFromCheckpoint builds a publishable single-version model from a
// loaded checkpoint state. The weights are copied so later mutation of
// st cannot reach a published model.
func ModelFromCheckpoint(name string, st *checkpoint.State) *Model {
	return &Model{
		Name:  name,
		Store: snapshot.Of(st.Epoch, st.Iters, st.Weights),
		Algo:  st.Algo, Objective: st.Objective, Dataset: st.Dataset,
	}
}

// Registry is the model store behind the prediction hot path. The name →
// model map lives behind an atomic pointer and is copy-on-write: Publish
// and Delete clone it under a writer mutex and swap the pointer, so
// Get, List and Predict are lock-free — a single atomic load, never
// blocked by (or blocking) a publishing training job. Combined with the
// per-model snapshot store, the request path holds no lock anywhere: map
// load → version load → score.
type Registry struct {
	mu     sync.Mutex // serializes Publish/Delete; readers never take it
	models atomic.Pointer[map[string]*Model]

	// obs is the central metrics registry every per-model instrument is
	// bound from; the Manager and Server layer their own families onto
	// the same registry so one /metrics scrape covers the whole service.
	obs     *obs.Registry
	reqVec  *obs.CounterVec
	predVec *obs.CounterVec
	latVec  *obs.SummaryVec
}

// NewRegistry returns an empty registry backed by a fresh service-wide
// metrics registry (build info and runtime gauges included).
func NewRegistry() *Registry {
	r := &Registry{obs: obs.NewServiceRegistry()}
	m := make(map[string]*Model)
	r.models.Store(&m)
	r.reqVec = r.obs.CounterVec("isasgd_model_requests_total",
		"Predict requests served per model.", "model")
	r.predVec = r.obs.CounterVec("isasgd_model_predictions_total",
		"Instances scored per model (batch sizes summed).", "model")
	r.latVec = r.obs.SummaryVec("isasgd_model_predict_latency_seconds",
		"Predict latency quantiles per model (log-bucket histogram estimate).", 1e-9, "model")
	r.obs.Collect("isasgd_model_qps",
		"Average predict requests per second per model.",
		obs.TypeGauge, []string{"model"}, func(emit obs.Emit) {
			for _, m := range r.load() {
				if m.requests != nil {
					emit([]string{m.Name}, m.requests.Rate())
				}
			}
		})
	r.obs.Collect("isasgd_model_seq",
		"Current weight-snapshot sequence number per model (advances while the model trains live).",
		obs.TypeGauge, []string{"model", "live"}, func(emit obs.Emit) {
			for _, m := range r.load() {
				live := "0"
				if m.Live() {
					live = "1"
				}
				if v := m.Store.Load(); v != nil {
					emit([]string{m.Name, live}, float64(v.Seq))
				}
			}
		})
	return r
}

// Obs returns the service-wide metrics registry backing this model
// registry.
func (r *Registry) Obs() *obs.Registry { return r.obs }

// load returns the current (immutable) name → model map.
func (r *Registry) load() map[string]*Model { return *r.models.Load() }

// cloneWith returns a copy of cur with name mapped to m, or with name
// removed when m is nil — the one copy-on-write step behind every
// registry write.
func cloneWith(cur map[string]*Model, name string, m *Model) map[string]*Model {
	next := make(map[string]*Model, len(cur)+1)
	for k, v := range cur {
		if k != name {
			next[k] = v
		}
	}
	if m != nil {
		next[name] = m
	}
	return next
}

// Publish installs (or atomically replaces) m under m.Name by cloning
// the map. The telemetry (request/prediction meters, latency histogram)
// of a replaced model carries over so per-model counters survive hot
// swaps, including a finished job republishing over its live model.
func (r *Registry) Publish(m *Model) error {
	_, err := r.publishReplacing(m)
	return err
}

// publishReplacing is Publish that also reports the model the name
// previously held (nil if none). The capture and the swap happen under
// one writer-mutex hold, so live-job bookkeeping sees exactly the entry
// it displaced.
func (r *Registry) publishReplacing(m *Model) (*Model, error) {
	if m.Name == "" {
		return nil, fmt.Errorf("serve: model name must be non-empty")
	}
	if m.Store == nil {
		return nil, fmt.Errorf("serve: model %q has no snapshot store", m.Name)
	}
	v := m.Store.Load()
	if v == nil || len(v.Weights) == 0 {
		return nil, fmt.Errorf("serve: model %q has no weights", m.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.load()
	prev := cur[m.Name]
	// Set-once: a model that already carries telemetry (e.g. a previous
	// version being republished after a failed live job) is never written
	// to here — concurrent readers may hold it. Binding goes through the
	// obs vecs, which hand back the same series for the same name, so
	// counters survive hot swaps and republications automatically.
	if m.requests == nil {
		m.requests = r.reqVec.With(m.Name)
		m.preds = r.predVec.With(m.Name)
		m.lat = r.latVec.With(m.Name)
	}
	if m.Published.IsZero() {
		m.Published = time.Now()
	}
	next := cloneWith(cur, m.Name, m)
	r.models.Store(&next)
	return prev, nil
}

// restoreIf reverts name to prev (or removes the entry when prev is
// nil), but only while the current entry is still expect: a job rolling
// back its live model must not clobber a model someone else published,
// imported or deleted over the name mid-job. Reports whether the
// restore happened.
func (r *Registry) restoreIf(name string, expect, prev *Model) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.load()
	if cur[name] != expect {
		return false
	}
	next := cloneWith(cur, name, prev)
	r.models.Store(&next)
	return true
}

// Get returns the current model under name. Lock-free.
func (r *Registry) Get(name string) (*Model, bool) {
	m, ok := r.load()[name]
	return m, ok
}

// Delete removes name by cloning the map; it reports whether a model
// was present. In-flight predictions against the removed model finish
// against the snapshot they already resolved.
func (r *Registry) Delete(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.load()
	if _, ok := cur[name]; !ok {
		return false
	}
	next := cloneWith(cur, name, nil)
	r.models.Store(&next)
	return true
}

// List returns info for every published model, sorted by name.
// Lock-free: it walks one atomically loaded map snapshot.
func (r *Registry) List() []ModelInfo {
	cur := r.load()
	out := make([]ModelInfo, 0, len(cur))
	for _, m := range cur {
		v := m.Store.Load()
		info := ModelInfo{
			Name: m.Name, Algo: m.Algo, Objective: m.Objective,
			Dataset: m.Dataset, Dim: v.Dim(), Epoch: v.Epoch,
			Iters: v.Iters, Seq: v.Seq, Live: m.Live(),
			DType:     m.Store.DType(),
			Published: m.Published,
			Requests:  m.requests.Count(), QPS: m.requests.Rate(),
			Predictions: m.preds.Count(),
		}
		if lag, ok := m.ReplicaLag(); ok {
			info.Replica = true
			info.Lag = &lag
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// predictResponses pools PredictResponse values (and their Prediction
// slices) so the steady-state predict path allocates nothing; see
// PredictResponse.Release.
var predictResponses = sync.Pool{New: func() any { return new(PredictResponse) }}

// Release returns the response (and its prediction buffer) to the pool.
// Callers must not touch the response after releasing it. Releasing is
// optional — an unreleased response is ordinary garbage — but the predict
// hot path relies on it for zero steady-state allocations.
func (p *PredictResponse) Release() {
	p.Model = ""
	p.Predictions = p.Predictions[:0]
	predictResponses.Put(p)
}

// Predict validates and scores a batch against the named model. The
// whole request runs lock-free and, on the steady state, allocation-free:
// one atomic load resolves the model map, one more resolves the weight
// version the entire batch is scored against (so a batch is always
// internally consistent, even while the model hot-advances), the batch
// is validated before any buffer is taken, and the response comes from a
// pool the caller returns it to via Release. Telemetry records both the
// request and the len(batch) instances it scored. An unknown name yields
// an error wrapping ErrNotFound so callers can distinguish it from a bad
// batch.
func (r *Registry) Predict(name string, batch []Instance) (*PredictResponse, error) {
	m, ok := r.load()[name]
	if !ok {
		return nil, fmt.Errorf("serve: model %q: %w", name, ErrNotFound)
	}
	v := m.Store.Load()
	if v == nil {
		return nil, fmt.Errorf("serve: model %q has no published version: %w", name, ErrNotFound)
	}
	return predictAtVersion(m, v, batch)
}

// predictAtVersion validates and scores one batch against an already
// resolved model + version pair — the scoring core shared by the
// unbatched path (Registry.Predict, which resolves per request) and the
// micro-batcher (Batcher, which resolves once per coalesced flush). The
// response comes from the pool and telemetry counts this batch as one
// request; callers own the resolve discipline.
func predictAtVersion(m *Model, v *snapshot.Version, batch []Instance) (*PredictResponse, error) {
	for i := range batch {
		if err := batch[i].Validate(); err != nil {
			return nil, fmt.Errorf("serve: instance %d: %w", i, err)
		}
	}
	resp := predictResponses.Get().(*PredictResponse)
	resp.Model = m.Name
	resp.Seq = v.Seq
	resp.Epoch = v.Epoch
	resp.Iters = v.Iters
	resp.Live = m.Live()
	if cap(resp.Predictions) < len(batch) {
		resp.Predictions = make([]Prediction, len(batch))
	}
	resp.Predictions = resp.Predictions[:len(batch)]
	for i := range batch {
		resp.Predictions[i] = m.predictAt(v, batch[i])
	}
	m.requests.Add(1)
	m.preds.Add(int64(len(batch)))
	return resp, nil
}

// ObserveLatency records one served predict latency against the named
// model's histogram (no-op for unknown names). It lives on the registry
// so the HTTP layer can stamp end-to-end handler time without holding a
// model reference across the request.
func (r *Registry) ObserveLatency(name string, d time.Duration) {
	if m, ok := r.load()[name]; ok && m.lat != nil {
		m.lat.ObserveDuration(d)
	}
}
