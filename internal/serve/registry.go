package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/isasgd/isasgd/internal/checkpoint"
	"github.com/isasgd/isasgd/internal/kernel"
	"github.com/isasgd/isasgd/internal/metrics"
	"github.com/isasgd/isasgd/internal/objective"
)

// Model is an immutable published model. The weight slice is owned by
// the Model and never mutated after publication, so predictions read it
// without synchronization; republishing a name swaps the whole *Model
// pointer under the registry lock instead of touching weights in place.
type Model struct {
	Name      string
	Weights   []float64
	Algo      string
	Objective string
	Dataset   string
	Epoch     int
	Iters     int64
	Published time.Time

	// obj, when non-nil, maps scores to labels with the training
	// objective's Predict; checkpoint-imported models fall back to
	// sign(score), which is what all shipped objectives implement.
	obj objective.Objective
	qps *metrics.Meter
}

// Dim returns the model dimensionality.
func (m *Model) Dim() int { return len(m.Weights) }

// Predict scores one validated instance with the shared devirtualized
// sparse dot (internal/kernel). Out-of-range indices contribute 0 (see
// Instance).
func (m *Model) Predict(in Instance) Prediction {
	score := kernel.DotClampedInts(m.Weights, in.Indices, in.Values)
	label := 1.0
	if m.obj != nil {
		label = m.obj.Predict(score)
	} else if score < 0 {
		label = -1
	}
	return Prediction{Score: score, Label: label}
}

// Checkpoint renders the model as a persistable training state, with a
// defensive copy of the weights.
func (m *Model) Checkpoint() *checkpoint.State {
	w := make([]float64, len(m.Weights))
	copy(w, m.Weights)
	return &checkpoint.State{
		Algo:      m.Algo,
		Objective: m.Objective,
		Dataset:   m.Dataset,
		Epoch:     m.Epoch,
		Iters:     m.Iters,
		Dim:       len(w),
		Weights:   w,
	}
}

// ModelFromCheckpoint builds a publishable model from a loaded
// checkpoint state. The weights are copied so later mutation of st
// cannot reach a published model.
func ModelFromCheckpoint(name string, st *checkpoint.State) *Model {
	w := make([]float64, len(st.Weights))
	copy(w, st.Weights)
	return &Model{
		Name: name, Weights: w,
		Algo: st.Algo, Objective: st.Objective, Dataset: st.Dataset,
		Epoch: st.Epoch, Iters: st.Iters,
	}
}

// Registry is the hot-swappable model store. Reads (Predict, Get, List)
// take the read lock; Publish and Delete take the write lock and swap
// pointers, so a finishing training job publishes its weights atomically
// while concurrent predictions keep scoring the previous version.
type Registry struct {
	mu     sync.RWMutex
	models map[string]*Model
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{models: make(map[string]*Model)} }

// Publish installs (or atomically replaces) m under m.Name. The QPS
// meter of a replaced model carries over so per-model request telemetry
// survives hot swaps.
func (r *Registry) Publish(m *Model) error {
	if m.Name == "" {
		return fmt.Errorf("serve: model name must be non-empty")
	}
	if len(m.Weights) == 0 {
		return fmt.Errorf("serve: model %q has no weights", m.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.models[m.Name]; ok && prev.qps != nil {
		m.qps = prev.qps
	} else if m.qps == nil {
		m.qps = metrics.NewMeter()
	}
	if m.Published.IsZero() {
		m.Published = time.Now()
	}
	r.models[m.Name] = m
	return nil
}

// Get returns the current model under name.
func (r *Registry) Get(name string) (*Model, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.models[name]
	return m, ok
}

// Delete removes name; it reports whether a model was present.
func (r *Registry) Delete(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.models[name]
	delete(r.models, name)
	return ok
}

// List returns info for every published model, sorted by name.
func (r *Registry) List() []ModelInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]ModelInfo, 0, len(r.models))
	for _, m := range r.models {
		out = append(out, ModelInfo{
			Name: m.Name, Algo: m.Algo, Objective: m.Objective,
			Dataset: m.Dataset, Dim: m.Dim(), Epoch: m.Epoch,
			Iters: m.Iters, Published: m.Published,
			Requests: m.qps.Count(), QPS: m.qps.Rate(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Predict validates and scores a batch against the named model,
// recording one QPS event per request. An unknown name yields an error
// wrapping ErrNotFound so callers can distinguish it from a bad batch.
func (r *Registry) Predict(name string, batch []Instance) (*PredictResponse, error) {
	m, ok := r.Get(name)
	if !ok {
		return nil, fmt.Errorf("serve: model %q: %w", name, ErrNotFound)
	}
	preds := make([]Prediction, len(batch))
	for i, in := range batch {
		if err := in.Validate(); err != nil {
			return nil, fmt.Errorf("serve: instance %d: %w", i, err)
		}
		preds[i] = m.Predict(in)
	}
	m.qps.Add(1)
	return &PredictResponse{Model: name, Predictions: preds}, nil
}
