package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/isasgd/isasgd/internal/adaptive"
	"github.com/isasgd/isasgd/internal/balance"
	"github.com/isasgd/isasgd/internal/checkpoint"
	"github.com/isasgd/isasgd/internal/dataset"
	"github.com/isasgd/isasgd/internal/metrics"
	"github.com/isasgd/isasgd/internal/model"
	"github.com/isasgd/isasgd/internal/objective"
	"github.com/isasgd/isasgd/internal/obs"
	"github.com/isasgd/isasgd/internal/snapshot"
	"github.com/isasgd/isasgd/internal/solver"
	"github.com/isasgd/isasgd/internal/stream"
)

// ErrNotFound is returned for unknown job or model identifiers.
var ErrNotFound = errors.New("serve: not found")

// ErrShuttingDown is returned for submissions after Shutdown began.
var ErrShuttingDown = errors.New("serve: shutting down")

// Job is one training job owned by the Manager. All mutable fields are
// guarded by mu; the public surface hands out JobStatus snapshots.
type Job struct {
	ID string

	// reqID is the X-Request-ID of the submitting HTTP request (or a
	// fresh id for direct submissions); immutable after register, stamped
	// through the job's lifecycle log lines and status.
	reqID string

	mu        sync.Mutex
	cfg       solver.Config // compiled config (defaults applied)
	kind      string        // "" for batch jobs, "stream" for streaming jobs
	model     string
	state     JobState
	algoName  string
	objName   string
	dsName    string
	samples   int
	dim       int
	curve     metrics.Curve
	iters     int64
	errMsg    string
	submitted time.Time
	started   time.Time
	finished  time.Time

	cancel context.CancelFunc
	done   chan struct{} // closed when the job reaches a terminal state
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.ID, Model: j.model, Kind: j.kind, State: j.state,
		RequestID: j.reqID,
		Algo:      j.algoName, Objective: j.objName, Dataset: j.dsName,
		Samples: j.samples, Dim: j.dim,
		Epochs: j.cfg.Epochs, Iters: j.iters, Error: j.errMsg,
		Submitted: j.submitted,
	}
	if last := j.curve.Final(); len(j.curve) > 0 {
		st.Epoch = last.Epoch
		st.Obj = last.Obj
		st.ErrRate = last.ErrRate
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// CurveResponse snapshots the convergence curve recorded so far.
func (j *Job) CurveResponse() CurveResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	return CurveResponse{ID: j.ID, State: j.state, Curve: curvePoints(j.curve)}
}

// Manager runs training jobs on a bounded worker pool, publishes
// models into a Registry — live while they train (the snapshot
// pipeline: mid-training weight versions hot-advance under concurrent
// predictions), final when they complete — and persists checkpoints.
type Manager struct {
	registry     *Registry
	ckptDir      string // "" disables persistence
	streamRoot   string // "" rejects file-fed streaming jobs
	publishEvery int    // live-snapshot cadence in epochs/blocks; 0 publishes only at completion
	defaultPrec  string // precision applied to specs that leave it empty; "" keeps f64
	sem          chan struct{}

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
	updates    *obs.Counter
	log        *slog.Logger

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	nextID int
	closed bool
}

// NewManager returns a manager executing at most poolSize jobs
// concurrently (minimum 1). ckptDir, when non-empty, receives one
// <model>.ckpt file per finished (or cancelled-with-progress) job and is
// scanned by Restore.
func NewManager(reg *Registry, poolSize int, ckptDir string) *Manager {
	if poolSize < 1 {
		poolSize = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	o := reg.Obs()
	m := &Manager{
		registry:     reg,
		ckptDir:      ckptDir,
		publishEvery: 1,
		sem:          make(chan struct{}, poolSize),
		baseCtx:      ctx, baseCancel: cancel,
		updates: o.Counter("isasgd_updates_total",
			"Cumulative solver updates across all jobs."),
		log:  obs.NopLogger(),
		jobs: make(map[string]*Job),
	}
	o.Collect("isasgd_updates_per_sec",
		"Average solver updates per second since start.",
		obs.TypeGauge, nil, func(emit obs.Emit) {
			emit(nil, m.updates.Rate())
		})
	o.Collect("isasgd_jobs", "Jobs by lifecycle state.",
		obs.TypeGauge, []string{"state"}, func(emit obs.Emit) {
			st := m.Stats()
			emit([]string{"cancelled"}, float64(st.Cancelled))
			emit([]string{"done"}, float64(st.Done))
			emit([]string{"failed"}, float64(st.Failed))
			emit([]string{"queued"}, float64(st.Queued))
			emit([]string{"running"}, float64(st.Running))
		})
	o.Collect("isasgd_model_snapshot_lag_updates",
		"Serving staleness of live models: updates the running job has applied beyond the currently published snapshot.",
		obs.TypeGauge, []string{"model"}, func(emit obs.Emit) {
			for _, st := range m.Jobs() {
				if st.State != StateRunning {
					continue
				}
				mdl, ok := m.registry.Get(st.Model)
				if !ok {
					continue
				}
				v := mdl.Store.Load()
				if v == nil {
					continue
				}
				if lag := st.Iters - v.Iters; lag >= 0 {
					emit([]string{st.Model}, float64(lag))
				}
			}
		})
	return m
}

// SetLogger installs the structured logger for job lifecycle events.
// The default discards. Call before submitting jobs.
func (m *Manager) SetLogger(l *slog.Logger) {
	if l == nil {
		l = obs.NopLogger()
	}
	m.log = l
}

// Logger returns the manager's structured logger (never nil).
func (m *Manager) Logger() *slog.Logger { return m.log }

// Obs returns the service-wide metrics registry (shared with the model
// registry and HTTP layer).
func (m *Manager) Obs() *obs.Registry { return m.registry.Obs() }

// SetPublishEvery sets the live-publication cadence: running jobs cut a
// weight snapshot (and appear in the registry as live models) every n
// epochs (batch jobs) or blocks (streaming jobs). n <= 0 disables live
// publication — models appear only when their job completes, the
// pre-snapshot behavior. Call before submitting jobs.
func (m *Manager) SetPublishEvery(n int) {
	if n < 0 {
		n = 0
	}
	m.publishEvery = n
}

// Registry returns the model registry jobs publish into.
func (m *Manager) Registry() *Registry { return m.registry }

// SetDefaultPrecision sets the training precision applied to job specs
// that leave Precision empty (cmd/isasgd-serve's -precision flag). An
// explicit spec precision always wins; unknown names are rejected here
// rather than on every submission. Call before submitting jobs.
func (m *Manager) SetDefaultPrecision(p string) error {
	prec, err := model.ParsePrecision(p)
	if err != nil {
		return err
	}
	m.defaultPrec = prec
	return nil
}

// SetStreamRoot allows file-fed streaming jobs (JobSpec.Path) to read
// files under dir. While unset (the default), path-based streaming
// specs are rejected — the API must not become an arbitrary-file read
// oracle. Call before serving requests.
func (m *Manager) SetStreamRoot(dir string) { m.streamRoot = dir }

// CheckpointPath returns the persistence path for a model name, or ""
// when persistence is disabled.
func (m *Manager) CheckpointPath(model string) string {
	if m.ckptDir == "" {
		return ""
	}
	return filepath.Join(m.ckptDir, model+checkpoint.Ext)
}

// Restore scans the checkpoint directory and republishes every saved
// model under its file stem, so a restarted server keeps serving the
// models of its previous life. Unreadable or unpublishable files are
// skipped and reported rather than aborting, so one corrupt checkpoint
// cannot keep the server from booting with its healthy models.
func (m *Manager) Restore() (restored int, skipped []string, err error) {
	paths, err := checkpoint.ListDir(m.ckptDir)
	if err != nil {
		return 0, nil, err
	}
	for _, p := range paths {
		st, err := checkpoint.LoadFile(p)
		if err != nil {
			skipped = append(skipped, p)
			continue
		}
		name := strings.TrimSuffix(filepath.Base(p), checkpoint.Ext)
		if err := m.registry.Publish(ModelFromCheckpoint(name, st)); err != nil {
			skipped = append(skipped, p)
			continue
		}
		restored++
	}
	return restored, skipped, nil
}

// validName reports whether s is safe as a model name and checkpoint
// file stem: non-empty, and only [A-Za-z0-9._-] with no leading dot.
func validName(s string) bool {
	if s == "" || s[0] == '.' || len(s) > 128 {
		return false
	}
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// resolved is a JobSpec compiled against the library: everything the
// worker goroutine needs to call solver.Train (batch) or drive a
// stream.Trainer (streaming).
type resolved struct {
	synth *dataset.SynthConfig // preset jobs synthesize in the worker
	ds    *dataset.Dataset     // inline jobs parse at submission
	obj   objective.Objective
	cfg   solver.Config

	stream     *stream.Config // non-nil for streaming jobs
	streamPath string         // server-side source ("" = fed from an upload body)
	blockSize  int
}

// compile validates a spec and resolves names to library values.
// Validation errors surface synchronously at submission time so the API
// can answer 400 instead of parking a doomed job in the queue. bodyFed
// reports that the streaming source is an upload body rather than Path;
// streamRoot is the directory file-fed jobs are confined to ("" rejects
// them).
func compile(spec JobSpec, bodyFed bool, streamRoot string) (*resolved, error) {
	switch spec.Kind {
	case "", "batch":
		if bodyFed {
			return nil, fmt.Errorf("serve: upload-fed jobs must set kind \"stream\"")
		}
		return compileBatch(spec)
	case "stream":
		return compileStream(spec, bodyFed, streamRoot)
	default:
		return nil, fmt.Errorf("serve: unknown job kind %q (want batch or stream)", spec.Kind)
	}
}

func compileBatch(spec JobSpec) (*resolved, error) {
	r := &resolved{}

	if spec.Path != "" || spec.Dim != 0 || spec.BlockSize != 0 || spec.WindowBlocks != 0 ||
		spec.UpdatesPerBlock != 0 || spec.Reservoir != 0 || spec.RebuildEvery != 0 {
		return nil, fmt.Errorf("serve: streaming fields require kind \"stream\"")
	}
	switch {
	case spec.Dataset != "" && spec.Data != "":
		return nil, fmt.Errorf("serve: set either dataset or data, not both")
	case spec.Dataset != "":
		scale := spec.Scale
		if scale == 0 {
			scale = 1
		}
		if scale <= 0 || scale > 1 {
			return nil, fmt.Errorf("serve: scale must be in (0,1], got %g", spec.Scale)
		}
		var cfg dataset.SynthConfig
		switch spec.Dataset {
		case "small":
			cfg = dataset.Small(spec.Seed)
		case "news20s":
			cfg = dataset.News20Like(scale, spec.Seed)
		case "urls":
			cfg = dataset.URLLike(scale, spec.Seed)
		case "kddas":
			cfg = dataset.KDDALike(scale, spec.Seed)
		case "kddbs":
			cfg = dataset.KDDBLike(scale, spec.Seed)
		default:
			return nil, fmt.Errorf("serve: unknown dataset preset %q (want small, news20s, urls, kddas or kddbs)", spec.Dataset)
		}
		r.synth = &cfg
	case spec.Data != "":
		ds, err := dataset.ParseLibSVM(strings.NewReader(spec.Data), "inline", spec.MinDim)
		if err != nil {
			return nil, fmt.Errorf("serve: parse inline data: %w", err)
		}
		r.ds = ds
	default:
		return nil, fmt.Errorf("serve: a dataset preset or inline data is required")
	}

	algoName := spec.Algo
	if algoName == "" {
		algoName = "is-asgd"
	}
	algo, err := solver.ParseAlgo(algoName)
	if err != nil {
		return nil, err
	}
	// Mirror the solver's precision validation synchronously: unknown
	// names and the float64-only solvers answer 400 at submission, not an
	// asynchronous failure.
	prec, err := model.ParsePrecision(spec.Precision)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if prec == model.PrecisionF32 && (algo == solver.SVRGSGD || algo == solver.SVRGASGD || algo == solver.SAGA) {
		return nil, fmt.Errorf("serve: precision f32 is not supported for %s (dense correction passes are float64-only)", algoName)
	}
	if spec.Importance != "" || spec.LossBeta != 0 {
		return nil, fmt.Errorf("serve: importance/loss_beta select the streaming sampler weighting and require kind \"stream\"")
	}
	// Mirror the solver's adaptive validation synchronously: the policy
	// knobs are Engine-only (scalar f64 updates), so reject the dense-
	// correction algos, f32 storage and minibatch at submission.
	pol := adaptive.Policy{AdaptC: spec.AdaptC, StalenessBound: spec.StalenessBound, DCLambda: spec.DCLambda}
	if err := pol.Validate(); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if spec.StalenessBound < 0 {
		return nil, fmt.Errorf("serve: staleness_bound must be non-negative, got %d", spec.StalenessBound)
	}
	if pol.Enabled() {
		switch {
		case algo == solver.SVRGSGD || algo == solver.SVRGASGD || algo == solver.SAGA:
			return nil, fmt.Errorf("serve: adaptive knobs are not supported for %s", algoName)
		case prec == model.PrecisionF32:
			return nil, fmt.Errorf("serve: adaptive knobs require the f64 data path")
		case spec.Batch > 1:
			return nil, fmt.Errorf("serve: adaptive knobs do not apply to minibatch jobs")
		}
	}

	var err2 error
	if r.obj, err2 = parseObjective(spec); err2 != nil {
		return nil, err2
	}
	bal, err2 := parseBalanceMode(spec.Balance)
	if err2 != nil {
		return nil, err2
	}

	epochs := spec.Epochs
	if epochs == 0 {
		epochs = 10
	}
	step := spec.Step
	if step == 0 {
		step = 0.5
	}
	// Mirror solver validation synchronously (plus service-level resource
	// bounds) so a doomed or abusive spec gets a 400 at submission instead
	// of a 202 followed by an asynchronous failure — or a single request
	// spawning an unbounded number of worker goroutines.
	const (
		maxEpochs  = 100_000_000
		maxBatch   = 1 << 20
		maxThreads = 1 << 10
	)
	switch {
	case epochs < 0 || epochs > maxEpochs:
		return nil, fmt.Errorf("serve: epochs must be in [1, %d], got %d", maxEpochs, spec.Epochs)
	case step < 0 || math.IsNaN(step) || math.IsInf(step, 0):
		return nil, fmt.Errorf("serve: step must be positive and finite, got %g", spec.Step)
	case spec.StepDecay < 0 || spec.StepDecay > 1:
		return nil, fmt.Errorf("serve: step_decay must be in (0, 1], got %g", spec.StepDecay)
	case spec.Eta < 0 || math.IsNaN(spec.Eta) || math.IsInf(spec.Eta, 0):
		return nil, fmt.Errorf("serve: eta must be non-negative and finite, got %g", spec.Eta)
	case spec.Threads < 0 || spec.Threads > maxThreads:
		return nil, fmt.Errorf("serve: threads must be in [0, %d], got %d", maxThreads, spec.Threads)
	case spec.Batch < 0 || spec.Batch > maxBatch:
		return nil, fmt.Errorf("serve: batch must be in [0, %d], got %d", maxBatch, spec.Batch)
	case spec.EvalEvery < 0:
		return nil, fmt.Errorf("serve: eval_every must be non-negative, got %d", spec.EvalEvery)
	}
	threads := spec.Threads
	if np := runtime.GOMAXPROCS(0); threads > np {
		threads = np // more workers than cores only adds conflict
	}
	r.cfg = solver.Config{
		Algo: algo, Epochs: epochs, Step: step, StepDecay: spec.StepDecay,
		Threads: threads, Balance: bal, Batch: spec.Batch, Seed: spec.Seed,
		EvalEvery: spec.EvalEvery, Precision: prec,
		AdaptC: spec.AdaptC, StalenessBound: spec.StalenessBound, DCLambda: spec.DCLambda,
	}
	return r, nil
}

// resolveStreamPath confines a file-fed streaming source to the
// configured root: relative paths resolve under it, absolute paths must
// already live inside it, and both ".." and symlink escapes are
// rejected (the containment check runs on the symlink-resolved path, so
// a link inside the root pointing outside it cannot smuggle reads). An
// empty root rejects every path — exposing arbitrary server-side reads
// to API clients is opt-in.
func resolveStreamPath(root, p string) (string, error) {
	if root == "" {
		return "", fmt.Errorf("serve: file-fed streaming jobs are disabled (no stream root configured; use an upload body)")
	}
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return "", fmt.Errorf("serve: stream root: %w", err)
	}
	if realRoot, err := filepath.EvalSymlinks(absRoot); err == nil {
		absRoot = realRoot
	}
	if !filepath.IsAbs(p) {
		p = filepath.Join(absRoot, p)
	}
	real, err := filepath.EvalSymlinks(filepath.Clean(p))
	if err != nil {
		return "", fmt.Errorf("serve: stream path: %w", err)
	}
	rel, err := filepath.Rel(absRoot, real)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("serve: stream path %q escapes the stream root", p)
	}
	return real, nil
}

// parseObjective resolves the spec's objective name and regularization.
func parseObjective(spec JobSpec) (objective.Objective, error) {
	eta := spec.Eta
	if eta == 0 {
		eta = 1e-4
	}
	switch spec.Objective {
	case "", "logistic-l1":
		return objective.LogisticL1{Eta: eta}, nil
	case "sqhinge-l2":
		return objective.SquaredHingeL2{Lambda: eta}, nil
	case "lsq-l2":
		return objective.LeastSquaresL2{Eta: eta}, nil
	default:
		return nil, fmt.Errorf("serve: unknown objective %q", spec.Objective)
	}
}

// parseBalanceMode resolves a balance-mode name.
func parseBalanceMode(s string) (balance.Mode, error) {
	switch s {
	case "", "auto":
		return balance.Auto, nil
	case "balance":
		return balance.ForceBalance, nil
	case "shuffle":
		return balance.ForceShuffle, nil
	case "sorted":
		return balance.Sorted, nil
	case "lpt":
		return balance.LPT, nil
	default:
		return 0, fmt.Errorf("serve: unknown balance mode %q", s)
	}
}

// compileStream validates a streaming spec and builds the
// stream.Config. The source is Path (server-side file, confined to
// streamRoot) or, when bodyFed, the upload body handed to SubmitStream.
func compileStream(spec JobSpec, bodyFed bool, streamRoot string) (*resolved, error) {
	r := &resolved{}

	switch {
	case spec.Dataset != "" || spec.Data != "":
		return nil, fmt.Errorf("serve: streaming jobs take a path or an upload body, not dataset/data")
	case spec.Batch != 0 || spec.Epochs != 0 || spec.EvalEvery != 0:
		return nil, fmt.Errorf("serve: batch/epochs/eval_every do not apply to streaming jobs")
	case bodyFed && spec.Path != "":
		return nil, fmt.Errorf("serve: upload-fed streaming jobs must not also set path")
	case !bodyFed && spec.Path == "":
		return nil, fmt.Errorf("serve: streaming jobs require a path (or use POST /v1/jobs/stream with a body)")
	}
	if !bodyFed {
		p, err := resolveStreamPath(streamRoot, spec.Path)
		if err != nil {
			return nil, err
		}
		fi, err := os.Stat(p)
		if err != nil {
			return nil, fmt.Errorf("serve: stream path: %w", err)
		}
		if fi.IsDir() {
			return nil, fmt.Errorf("serve: stream path %q is a directory", spec.Path)
		}
		r.streamPath = p
	}

	// Service-level resource bounds, mirroring compileBatch.
	const (
		maxDim       = 1 << 28
		maxBlockSize = 1 << 22
		maxWindow    = 1 << 12
		maxUpdates   = 1 << 26
		maxReservoir = 1 << 24
		maxThreads   = 1 << 10
	)
	switch {
	case spec.Dim < 1 || spec.Dim > maxDim:
		return nil, fmt.Errorf("serve: streaming jobs require dim in [1, %d], got %d", maxDim, spec.Dim)
	case spec.BlockSize < 0 || spec.BlockSize > maxBlockSize:
		return nil, fmt.Errorf("serve: block_size must be in [0, %d], got %d", maxBlockSize, spec.BlockSize)
	case spec.WindowBlocks < 0 || spec.WindowBlocks > maxWindow:
		return nil, fmt.Errorf("serve: window_blocks must be in [0, %d], got %d", maxWindow, spec.WindowBlocks)
	case spec.UpdatesPerBlock < 0 || spec.UpdatesPerBlock > maxUpdates:
		return nil, fmt.Errorf("serve: updates_per_block must be in [0, %d], got %d", maxUpdates, spec.UpdatesPerBlock)
	case spec.Reservoir < 0 || spec.Reservoir > maxReservoir:
		return nil, fmt.Errorf("serve: reservoir must be in [0, %d], got %d", maxReservoir, spec.Reservoir)
	case spec.RebuildEvery < 0:
		return nil, fmt.Errorf("serve: rebuild_every must be non-negative, got %d", spec.RebuildEvery)
	case spec.Threads < 0 || spec.Threads > maxThreads:
		return nil, fmt.Errorf("serve: threads must be in [0, %d], got %d", maxThreads, spec.Threads)
	case spec.StepDecay < 0 || spec.StepDecay > 1:
		return nil, fmt.Errorf("serve: step_decay must be in (0, 1], got %g", spec.StepDecay)
	case spec.Eta < 0 || math.IsNaN(spec.Eta) || math.IsInf(spec.Eta, 0):
		return nil, fmt.Errorf("serve: eta must be non-negative and finite, got %g", spec.Eta)
	}

	var err error
	if r.obj, err = parseObjective(spec); err != nil {
		return nil, err
	}
	bal, err := parseBalanceMode(spec.Balance)
	if err != nil {
		return nil, err
	}
	prec, err := model.ParsePrecision(spec.Precision)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}

	// Algo selects the online sampler: the uniform baselines stream with
	// uniform draws, the IS variants with the reservoir-backed importance
	// state. Worker count is the async dial exactly as in batch jobs.
	uniform := false
	algoName := spec.Algo
	if algoName == "" {
		algoName = "is-asgd"
	}
	algo, err := solver.ParseAlgo(algoName)
	if err != nil {
		return nil, err
	}
	switch algo {
	case solver.SGD, solver.ASGD:
		uniform = true
	case solver.ISSGD, solver.ISASGD:
	default:
		return nil, fmt.Errorf("serve: algo %q does not support streaming (want sgd, asgd, is-sgd or is-asgd)", algoName)
	}

	// Mirror the stream trainer's adaptive validation synchronously so a
	// doomed spec answers 400 at submission instead of failing async.
	switch spec.Importance {
	case "", "bound":
	case "loss":
		if uniform {
			return nil, fmt.Errorf("serve: importance \"loss\" requires an importance-sampling algo (is-sgd or is-asgd)")
		}
		if prec == model.PrecisionF32 {
			return nil, fmt.Errorf("serve: importance \"loss\" requires the f64 data path")
		}
	default:
		return nil, fmt.Errorf("serve: unknown importance %q (want bound or loss)", spec.Importance)
	}
	if spec.DCLambda != 0 {
		return nil, fmt.Errorf("serve: dc_lambda applies to batch jobs only (streaming updates have no retained base)")
	}
	if err := (adaptive.Policy{AdaptC: spec.AdaptC, StalenessBound: spec.StalenessBound}).Validate(); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if spec.StalenessBound < 0 {
		return nil, fmt.Errorf("serve: staleness_bound must be non-negative, got %d", spec.StalenessBound)
	}
	if (spec.AdaptC > 0 || spec.StalenessBound > 0) && prec == model.PrecisionF32 {
		return nil, fmt.Errorf("serve: adaptive knobs require the f64 data path")
	}

	step := spec.Step
	if step == 0 {
		step = 0.5
	}
	if step < 0 || math.IsNaN(step) || math.IsInf(step, 0) {
		return nil, fmt.Errorf("serve: step must be positive and finite, got %g", spec.Step)
	}
	threads := spec.Threads
	if algo == solver.SGD || algo == solver.ISSGD {
		threads = 1 // sequential algos are sequential, matching isasgd-train -stream
	}
	if np := runtime.GOMAXPROCS(0); threads > np {
		threads = np
	}
	r.blockSize = spec.BlockSize
	r.stream = &stream.Config{
		Obj: r.obj, Dim: spec.Dim,
		Workers: threads, Step: step, StepDecay: spec.StepDecay,
		WindowBlocks: spec.WindowBlocks, UpdatesPerBlock: spec.UpdatesPerBlock,
		Reservoir: spec.Reservoir, RebuildEvery: spec.RebuildEvery,
		Mode: bal, Uniform: uniform, Seed: spec.Seed,
		Precision:  prec,
		Importance: spec.Importance, LossBeta: spec.LossBeta,
		AdaptC: spec.AdaptC, StalenessBound: spec.StalenessBound,
	}
	// Record the algo for status reporting.
	r.cfg = solver.Config{Algo: algo, Step: step, Seed: spec.Seed, Threads: threads}
	return r, nil
}

// register validates naming, allocates an id and enters the job into
// the tables. reqID is the submitting request's trace id ("" mints a
// fresh one, so every job is traceable). Callers own starting the
// worker.
func (m *Manager) register(spec JobSpec, r *resolved, reqID string) (*Job, context.Context, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, nil, ErrShuttingDown
	}
	id := fmt.Sprintf("job-%06d", m.nextID+1)
	model := spec.Model
	if model == "" {
		model = id
	}
	if !validName(model) {
		return nil, nil, fmt.Errorf("serve: invalid model name %q (use letters, digits, '.', '_', '-')", spec.Model)
	}
	m.nextID++
	if reqID == "" {
		reqID = obs.NewRequestID()
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	j := &Job{
		ID: id, reqID: reqID,
		cfg: r.cfg, kind: spec.Kind, model: model, state: StateQueued,
		algoName: r.cfg.Algo.String(), objName: r.obj.Name(),
		submitted: time.Now(),
		cancel:    cancel, done: make(chan struct{}),
	}
	switch {
	case r.stream != nil:
		j.kind = "stream"
		j.dim = r.stream.Dim
		if r.streamPath != "" {
			j.dsName = r.streamPath
		} else {
			j.dsName = "stream-upload"
		}
	case r.synth != nil:
		j.dsName = r.synth.Name
	default:
		j.dsName = r.ds.Name
		j.samples = r.ds.N()
		j.dim = r.ds.Dim()
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.wg.Add(1)
	return j, ctx, nil
}

// Submit validates spec, registers a queued job and starts its worker
// goroutine. The returned Job is live: poll Status or wait on Done.
func (m *Manager) Submit(spec JobSpec) (*Job, error) {
	return m.SubmitCtx(context.Background(), spec)
}

// SubmitCtx is Submit carrying the caller's context: the request id
// stamped by the HTTP middleware (obs.RequestID) is recorded on the job
// and threaded through its lifecycle log lines. The context does NOT
// cancel the job — jobs outlive their submitting request by design.
func (m *Manager) SubmitCtx(ctx context.Context, spec JobSpec) (*Job, error) {
	if spec.Precision == "" {
		spec.Precision = m.defaultPrec
	}
	r, err := compile(spec, false, m.streamRoot)
	if err != nil {
		return nil, err
	}
	j, jobCtx, err := m.register(spec, r, obs.RequestID(ctx))
	if err != nil {
		return nil, err
	}
	m.jobLog(j).LogAttrs(jobCtx, slog.LevelInfo, "job submitted",
		slog.String("kind", j.kind), slog.String("algo", j.algoName),
		slog.String("dataset", j.dsName))
	go m.run(jobCtx, j, r)
	return j, nil
}

// jobLog returns the job-scoped structured logger.
func (m *Manager) jobLog(j *Job) *slog.Logger {
	return m.log.With(
		slog.String("job", j.ID),
		slog.String("model", j.model),
		slog.String("request_id", j.reqID),
	)
}

// SubmitStream registers a streaming job fed by body and trains it in
// the calling goroutine, returning when the stream is exhausted, fails
// or is cancelled. The caller (the upload handler) keeps body alive for
// the duration and passes its request context: a client that
// disconnects mid-upload — or while the job waits for a pool slot —
// cancels the job instead of parking it forever. The job appears in the
// job tables like any other.
func (m *Manager) SubmitStream(ctx context.Context, spec JobSpec, body io.Reader) (*Job, error) {
	spec.Kind = "stream"
	if spec.Precision == "" {
		spec.Precision = m.defaultPrec
	}
	r, err := compile(spec, true, m.streamRoot)
	if err != nil {
		return nil, err
	}
	j, jobCtx, err := m.register(spec, r, obs.RequestID(ctx))
	if err != nil {
		return nil, err
	}
	m.jobLog(j).LogAttrs(jobCtx, slog.LevelInfo, "job submitted",
		slog.String("kind", j.kind), slog.String("algo", j.algoName),
		slog.String("dataset", j.dsName))
	stop := context.AfterFunc(ctx, j.cancel)
	defer stop()
	m.runStream(jobCtx, j, r, body)
	return j, nil
}

// liveModel tracks a model published mid-training so the job's terminal
// state can finalize it (training done: clear the live flag — the
// registry map needs no touch, the store already holds the final
// version) or roll it back (cancelled/failed: restore whatever model
// held the name before, or remove the entry). publish is idempotent and
// safe to call from every progress tick.
type liveModel struct {
	mgr  *Manager
	m    *Model
	once sync.Once
	prev *Model // model previously under the name; restored on rollback
	ok   atomic.Bool
}

// newLiveModel builds the (not yet registered) serving model for a job.
func (m *Manager) newLiveModel(j *Job, obj objective.Objective, dataset string, st *snapshot.Store) *liveModel {
	mdl := &Model{
		Name: j.model, Store: st,
		Algo: j.algoName, Objective: obj.Name(), Dataset: dataset,
		obj: obj,
	}
	return &liveModel{mgr: m, m: mdl}
}

// publish registers the model as live on first call; later calls are
// no-ops. Called from progress callbacks, i.e. only once the snapshot
// store holds a servable version. The displaced entry is captured
// atomically with the swap so rollback restores exactly what this job
// replaced.
func (l *liveModel) publish() {
	l.once.Do(func() {
		l.m.live.Store(true)
		prev, err := l.mgr.registry.publishReplacing(l.m)
		if err == nil {
			l.prev = prev
			l.ok.Store(true)
		}
	})
}

// finalize marks the model final. If the registry no longer holds this
// job's model under the name — it never went live (publication
// disabled, or the job finished before its first progress tick), or a
// client deleted/replaced the entry mid-job — it is (re)published now:
// job completion wins the name, matching the pre-snapshot behavior of
// publishing exactly at completion. The store must already hold the
// final version.
func (l *liveModel) finalize() error {
	l.m.live.Store(false)
	if l.ok.Load() {
		if cur, found := l.mgr.registry.Get(l.m.Name); found && cur == l.m {
			return nil
		}
	}
	return l.mgr.registry.Publish(l.m)
}

// rollback undoes a live publication after a cancelled or failed job:
// the name reverts to the previously published model, or disappears if
// the job introduced it — but only while this job's model still holds
// the name, so an entry someone else published or imported mid-job is
// left untouched. prev's own live flag belongs to its owning job
// (finalize/rollback there) and is not touched here.
func (l *liveModel) rollback() {
	if !l.ok.Load() {
		return
	}
	l.mgr.registry.restoreIf(l.m.Name, l.m, l.prev)
}

// run executes one job: waits for a pool slot, trains — publishing live
// weight snapshots at the manager's cadence — and checkpoints. It is the
// only writer of terminal state.
func (m *Manager) run(ctx context.Context, j *Job, r *resolved) {
	if r.stream != nil {
		m.runStream(ctx, j, r, nil)
		return
	}
	defer m.wg.Done()
	defer close(j.done)
	defer j.cancel()

	// Bounded pool: block until a slot frees or the job is cancelled
	// while still queued.
	select {
	case m.sem <- struct{}{}:
		defer func() { <-m.sem }()
	case <-ctx.Done():
		m.finish(j, StateCancelled, "cancelled while queued", nil)
		return
	}
	// When cancellation and a free slot race (e.g. shutdown with queued
	// jobs), select may pick the slot; re-check so we do not synthesize a
	// large dataset and run an epoch-0 evaluation only to discard them.
	if ctx.Err() != nil {
		m.finish(j, StateCancelled, "cancelled while queued", nil)
		return
	}

	ds := r.ds
	if r.synth != nil {
		var err error
		ds, err = dataset.Synthesize(*r.synth)
		if err != nil {
			m.finish(j, StateFailed, fmt.Sprintf("synthesize: %v", err), nil)
			return
		}
	}

	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.samples = ds.N()
	j.dim = ds.Dim()
	j.mu.Unlock()

	log := m.jobLog(j)
	log.LogAttrs(ctx, slog.LevelInfo, "job started",
		slog.Int("samples", ds.N()), slog.Int("dim", ds.Dim()))

	st := snapshot.NewStore()
	live := m.newLiveModel(j, r.obj, ds.Name, st)

	cfg := r.cfg
	cfg.Instruments = obs.NewTrainInstruments(m.Obs(), j.model)
	// A publish rejected for non-finite weights means serving stops
	// advancing while the job looks healthy — surface it immediately
	// rather than waiting for the run's terminal divergence check.
	st.SetOnReject(func(epoch int, iters int64) {
		cfg.Instruments.SnapshotRejected.Inc()
		log.LogAttrs(ctx, slog.LevelWarn, "snapshot publish rejected: non-finite weights",
			slog.Int("epoch", epoch), slog.Int64("iters", iters))
	})
	if m.publishEvery > 0 {
		cfg.Snapshots = st
		cfg.PublishEvery = m.publishEvery
		// Register the live model from the publication hook rather than
		// the (possibly sparse) evaluation cadence. A cold-start name goes
		// live at the epoch-0 version — servable immediately, if briefly
		// with untrained weights; a name already serving a finished model
		// keeps serving it until this retrain has completed at least one
		// epoch, so a fresh job never replaces good weights with zeros.
		_, retrain := m.registry.Get(j.model)
		st.SetOnPublish(func(v *snapshot.Version) {
			if v.Epoch >= 1 || !retrain {
				live.publish()
			}
			log.LogAttrs(ctx, slog.LevelDebug, "snapshot published",
				slog.Uint64("seq", v.Seq), slog.Int("epoch", v.Epoch),
				slog.Int64("iters", v.Iters))
		})
	}
	cfg.Progress = func(p metrics.Point) {
		j.mu.Lock()
		m.updates.Add(p.Iters - j.iters)
		j.iters = p.Iters
		j.curve = append(j.curve, p)
		j.mu.Unlock()
		log.LogAttrs(ctx, slog.LevelDebug, "epoch",
			slog.Int("epoch", p.Epoch), slog.Int64("iters", p.Iters),
			slog.Float64("obj", p.Obj), slog.Float64("err_rate", p.ErrRate))
	}

	res, err := solver.Train(ctx, ds, r.obj, cfg)
	switch {
	case err != nil && ctx.Err() != nil:
		// Cancelled (DELETE or shutdown). Withdraw the live model (the
		// name reverts to its previous owner, if any), persist partial
		// progress under "<model>.partial" so the run can be resumed or
		// inspected without clobbering the checkpoint of a finished model
		// of the same name (Restore would otherwise silently regress it on
		// restart), and do not publish the result.
		live.rollback()
		log.LogAttrs(ctx, slog.LevelInfo, "model rolled back")
		m.finish(j, StateCancelled, err.Error(), nil)
		if res != nil && len(res.Weights) > 0 {
			m.saveCheckpoint(j, j.model+".partial", r.obj, res)
		}
	case err != nil:
		live.rollback()
		log.LogAttrs(ctx, slog.LevelInfo, "model rolled back")
		m.finish(j, StateFailed, err.Error(), nil)
	default:
		if st.Load() == nil {
			// Live publication disabled: cut the single final version now.
			st.PublishCopy(res.Curve.Final().Epoch, res.Iters, res.Weights)
		}
		if pubErr := live.finalize(); pubErr != nil {
			m.finish(j, StateFailed, pubErr.Error(), nil)
			return
		}
		log.LogAttrs(ctx, slog.LevelInfo, "model finalized",
			slog.Uint64("seq", st.Seq()), slog.Int64("iters", res.Iters))
		m.finish(j, StateDone, "", res)
		m.saveCheckpoint(j, j.model, r.obj, res)
	}
}

// runStream executes one streaming job: waits for a pool slot, drives a
// stream.Trainer over the source (body, or the spec's path when body is
// nil), records one curve point per ingested block (sliding-window
// evaluation), and publishes + checkpoints the final model. Like run, it
// is the only writer of terminal state for its job.
func (m *Manager) runStream(ctx context.Context, j *Job, r *resolved, body io.Reader) {
	defer m.wg.Done()
	defer close(j.done)
	defer j.cancel()

	select {
	case m.sem <- struct{}{}:
		defer func() { <-m.sem }()
	case <-ctx.Done():
		m.finish(j, StateCancelled, "cancelled while queued", nil)
		return
	}
	if ctx.Err() != nil {
		m.finish(j, StateCancelled, "cancelled while queued", nil)
		return
	}

	src := body
	name := "stream-upload"
	if src == nil {
		f, err := os.Open(r.streamPath)
		if err != nil {
			m.finish(j, StateFailed, fmt.Sprintf("open stream: %v", err), nil)
			return
		}
		defer f.Close()
		src = f
		name = r.streamPath
	}

	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()

	log := m.jobLog(j)
	log.LogAttrs(ctx, slog.LevelInfo, "job started",
		slog.String("source", name), slog.Int("dim", j.dim))

	st := snapshot.NewStore()
	live := m.newLiveModel(j, r.obj, j.dsName, st)

	scfg := *r.stream
	scfg.Instruments = obs.NewTrainInstruments(m.Obs(), j.model)
	st.SetOnReject(func(block int, updates int64) {
		scfg.Instruments.SnapshotRejected.Inc()
		log.LogAttrs(ctx, slog.LevelWarn, "snapshot publish rejected: non-finite weights",
			slog.Int("block", block), slog.Int64("updates", updates))
	})
	if m.publishEvery > 0 {
		scfg.Snapshots = st
		scfg.PublishEvery = m.publishEvery
		// Stream versions are always cut after training on a block, so the
		// first published version is already trained — go live on it.
		st.SetOnPublish(func(v *snapshot.Version) {
			live.publish()
			log.LogAttrs(ctx, slog.LevelDebug, "snapshot published",
				slog.Uint64("seq", v.Seq), slog.Int("block", v.Epoch),
				slog.Int64("updates", v.Iters))
		})
	}
	tr, err := stream.NewTrainer(scfg)
	if err != nil {
		m.finish(j, StateFailed, err.Error(), nil)
		return
	}
	start := time.Now()
	bestErr := math.Inf(1)
	tr.SetOnBlock(func(s stream.BlockStats) {
		obj, rmse, errRate, _ := tr.EvaluateWindow()
		if errRate < bestErr {
			bestErr = errRate
		}
		p := metrics.Point{
			Epoch: int(s.Block) + 1, Iters: s.Updates, Wall: time.Since(start),
			Obj: obj, RMSE: rmse, ErrRate: errRate, BestErr: bestErr,
		}
		j.mu.Lock()
		m.updates.Add(p.Iters - j.iters)
		j.iters = p.Iters
		j.samples = int(tr.Rows())
		j.curve = append(j.curve, p)
		j.mu.Unlock()
	})

	res, err := tr.Run(ctx, stream.NewReader(src, name, r.blockSize))
	switch {
	case err != nil && ctx.Err() != nil:
		live.rollback()
		log.LogAttrs(ctx, slog.LevelInfo, "model rolled back")
		m.finish(j, StateCancelled, err.Error(), nil)
		if res != nil && len(res.Weights) > 0 {
			m.saveStreamCheckpoint(j, j.model+".partial", res)
		}
	case err != nil:
		live.rollback()
		log.LogAttrs(ctx, slog.LevelInfo, "model rolled back")
		m.finish(j, StateFailed, err.Error(), nil)
	case res.Rows == 0:
		live.rollback()
		m.finish(j, StateFailed, "stream contained no rows", nil)
	default:
		if st.Load() == nil {
			// Live publication disabled: cut the single final version now.
			st.PublishCopy(int(res.Blocks), res.Updates, res.Weights)
		}
		if pubErr := live.finalize(); pubErr != nil {
			m.finish(j, StateFailed, pubErr.Error(), nil)
			return
		}
		log.LogAttrs(ctx, slog.LevelInfo, "model finalized",
			slog.Uint64("seq", st.Seq()), slog.Int64("updates", res.Updates))
		m.finish(j, StateDone, "", nil)
		m.saveStreamCheckpoint(j, j.model, res)
	}
}

// saveStreamCheckpoint persists a streaming result; failures annotate
// the job as in saveCheckpoint.
func (m *Manager) saveStreamCheckpoint(j *Job, name string, res *stream.Result) {
	path := m.CheckpointPath(name)
	if path == "" {
		return
	}
	j.mu.Lock()
	st := &checkpoint.State{
		Algo: j.algoName, Objective: j.objName, Dataset: j.dsName,
		Epoch: int(res.Blocks), Iters: res.Updates,
		Step: j.cfg.Step, Seed: j.cfg.Seed,
		Dim: len(res.Weights), Weights: res.Weights, Curve: j.curve,
	}
	j.mu.Unlock()
	if err := checkpoint.SaveFile(path, st); err != nil {
		j.mu.Lock()
		if j.errMsg != "" {
			j.errMsg += "; "
		}
		j.errMsg += fmt.Sprintf("checkpoint: %v", err)
		j.mu.Unlock()
	}
}

// finish records a terminal state.
func (m *Manager) finish(j *Job, state JobState, errMsg string, res *solver.Result) {
	j.mu.Lock()
	j.state = state
	j.errMsg = errMsg
	j.finished = time.Now()
	if res != nil && len(j.curve) == 0 {
		j.curve = res.Curve
	}
	dur := j.finished.Sub(j.submitted)
	iters := j.iters
	j.mu.Unlock()
	m.jobLog(j).LogAttrs(context.Background(), slog.LevelInfo, "job finished",
		slog.String("state", string(state)), slog.String("error", errMsg),
		slog.Int64("iters", iters), slog.Duration("duration", dur))
}

// saveCheckpoint persists the job's result under the given model name;
// persistence failures are recorded on the job's error rather than
// failing it (a finished model is already published and servable).
func (m *Manager) saveCheckpoint(j *Job, name string, obj objective.Objective, res *solver.Result) {
	path := m.CheckpointPath(name)
	if path == "" {
		return
	}
	st := &checkpoint.State{
		Algo: res.Algo.String(), Objective: obj.Name(), Dataset: j.dsName,
		Epoch: res.Curve.Final().Epoch, Iters: res.Iters,
		Step: j.cfg.Step, Seed: j.cfg.Seed,
		Dim: len(res.Weights), Weights: res.Weights, Curve: res.Curve,
	}
	if err := checkpoint.SaveFile(path, st); err != nil {
		j.mu.Lock()
		if j.errMsg != "" {
			j.errMsg += "; "
		}
		j.errMsg += fmt.Sprintf("checkpoint: %v", err)
		j.mu.Unlock()
	}
}

// Get returns a job by id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs returns job statuses in submission order.
func (m *Manager) Jobs() []JobStatus {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Cancel requests cancellation of a queued or running job. Cancelling a
// terminal job is a no-op that still reports found=true.
func (m *Manager) Cancel(id string) error {
	j, ok := m.Get(id)
	if !ok {
		return ErrNotFound
	}
	j.cancel()
	return nil
}

// Stats is a telemetry snapshot for /healthz and /metrics.
type Stats struct {
	Queued, Running, Done, Failed, Cancelled int
	UpdatesTotal                             int64
	UpdatesPerSec                            float64
}

// Stats counts jobs by state and reports the solver update throughput.
func (m *Manager) Stats() Stats {
	var s Stats
	for _, st := range m.Jobs() {
		switch st.State {
		case StateQueued:
			s.Queued++
		case StateRunning:
			s.Running++
		case StateDone:
			s.Done++
		case StateFailed:
			s.Failed++
		case StateCancelled:
			s.Cancelled++
		}
	}
	s.UpdatesTotal = m.updates.Count()
	s.UpdatesPerSec = m.updates.Rate()
	return s
}

// Shutdown stops accepting submissions, cancels every queued and
// running job (their workers checkpoint partial progress) and waits for
// the workers to drain, or for ctx to expire.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.baseCancel()

	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown timed out: %w", ctx.Err())
	}
}
