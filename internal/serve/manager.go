package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"github.com/isasgd/isasgd/internal/balance"
	"github.com/isasgd/isasgd/internal/checkpoint"
	"github.com/isasgd/isasgd/internal/dataset"
	"github.com/isasgd/isasgd/internal/metrics"
	"github.com/isasgd/isasgd/internal/objective"
	"github.com/isasgd/isasgd/internal/solver"
)

// ErrNotFound is returned for unknown job or model identifiers.
var ErrNotFound = errors.New("serve: not found")

// ErrShuttingDown is returned for submissions after Shutdown began.
var ErrShuttingDown = errors.New("serve: shutting down")

// Job is one training job owned by the Manager. All mutable fields are
// guarded by mu; the public surface hands out JobStatus snapshots.
type Job struct {
	ID string

	mu        sync.Mutex
	cfg       solver.Config // compiled config (defaults applied)
	model     string
	state     JobState
	algoName  string
	objName   string
	dsName    string
	samples   int
	dim       int
	curve     metrics.Curve
	iters     int64
	errMsg    string
	submitted time.Time
	started   time.Time
	finished  time.Time

	cancel context.CancelFunc
	done   chan struct{} // closed when the job reaches a terminal state
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.ID, Model: j.model, State: j.state,
		Algo: j.algoName, Objective: j.objName, Dataset: j.dsName,
		Samples: j.samples, Dim: j.dim,
		Epochs: j.cfg.Epochs, Iters: j.iters, Error: j.errMsg,
		Submitted: j.submitted,
	}
	if last := j.curve.Final(); len(j.curve) > 0 {
		st.Epoch = last.Epoch
		st.Obj = last.Obj
		st.ErrRate = last.ErrRate
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// CurveResponse snapshots the convergence curve recorded so far.
func (j *Job) CurveResponse() CurveResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	return CurveResponse{ID: j.ID, State: j.state, Curve: curvePoints(j.curve)}
}

// Manager runs training jobs on a bounded worker pool, publishes
// finished models into a Registry, and persists checkpoints.
type Manager struct {
	registry *Registry
	ckptDir  string // "" disables persistence
	sem      chan struct{}

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
	updates    *metrics.Meter

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	nextID int
	closed bool
}

// NewManager returns a manager executing at most poolSize jobs
// concurrently (minimum 1). ckptDir, when non-empty, receives one
// <model>.ckpt file per finished (or cancelled-with-progress) job and is
// scanned by Restore.
func NewManager(reg *Registry, poolSize int, ckptDir string) *Manager {
	if poolSize < 1 {
		poolSize = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Manager{
		registry: reg,
		ckptDir:  ckptDir,
		sem:      make(chan struct{}, poolSize),
		baseCtx:  ctx, baseCancel: cancel,
		updates: metrics.NewMeter(),
		jobs:    make(map[string]*Job),
	}
}

// Registry returns the model registry jobs publish into.
func (m *Manager) Registry() *Registry { return m.registry }

// CheckpointPath returns the persistence path for a model name, or ""
// when persistence is disabled.
func (m *Manager) CheckpointPath(model string) string {
	if m.ckptDir == "" {
		return ""
	}
	return filepath.Join(m.ckptDir, model+checkpoint.Ext)
}

// Restore scans the checkpoint directory and republishes every saved
// model under its file stem, so a restarted server keeps serving the
// models of its previous life. Unreadable or unpublishable files are
// skipped and reported rather than aborting, so one corrupt checkpoint
// cannot keep the server from booting with its healthy models.
func (m *Manager) Restore() (restored int, skipped []string, err error) {
	paths, err := checkpoint.ListDir(m.ckptDir)
	if err != nil {
		return 0, nil, err
	}
	for _, p := range paths {
		st, err := checkpoint.LoadFile(p)
		if err != nil {
			skipped = append(skipped, p)
			continue
		}
		name := strings.TrimSuffix(filepath.Base(p), checkpoint.Ext)
		if err := m.registry.Publish(ModelFromCheckpoint(name, st)); err != nil {
			skipped = append(skipped, p)
			continue
		}
		restored++
	}
	return restored, skipped, nil
}

// validName reports whether s is safe as a model name and checkpoint
// file stem: non-empty, and only [A-Za-z0-9._-] with no leading dot.
func validName(s string) bool {
	if s == "" || s[0] == '.' || len(s) > 128 {
		return false
	}
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// resolved is a JobSpec compiled against the library: everything the
// worker goroutine needs to call solver.Train.
type resolved struct {
	synth *dataset.SynthConfig // preset jobs synthesize in the worker
	ds    *dataset.Dataset     // inline jobs parse at submission
	obj   objective.Objective
	cfg   solver.Config
}

// compile validates a spec and resolves names to library values.
// Validation errors surface synchronously at submission time so the API
// can answer 400 instead of parking a doomed job in the queue.
func compile(spec JobSpec) (*resolved, error) {
	r := &resolved{}

	switch {
	case spec.Dataset != "" && spec.Data != "":
		return nil, fmt.Errorf("serve: set either dataset or data, not both")
	case spec.Dataset != "":
		scale := spec.Scale
		if scale == 0 {
			scale = 1
		}
		if scale <= 0 || scale > 1 {
			return nil, fmt.Errorf("serve: scale must be in (0,1], got %g", spec.Scale)
		}
		var cfg dataset.SynthConfig
		switch spec.Dataset {
		case "small":
			cfg = dataset.Small(spec.Seed)
		case "news20s":
			cfg = dataset.News20Like(scale, spec.Seed)
		case "urls":
			cfg = dataset.URLLike(scale, spec.Seed)
		case "kddas":
			cfg = dataset.KDDALike(scale, spec.Seed)
		case "kddbs":
			cfg = dataset.KDDBLike(scale, spec.Seed)
		default:
			return nil, fmt.Errorf("serve: unknown dataset preset %q (want small, news20s, urls, kddas or kddbs)", spec.Dataset)
		}
		r.synth = &cfg
	case spec.Data != "":
		ds, err := dataset.ParseLibSVM(strings.NewReader(spec.Data), "inline", spec.MinDim)
		if err != nil {
			return nil, fmt.Errorf("serve: parse inline data: %w", err)
		}
		r.ds = ds
	default:
		return nil, fmt.Errorf("serve: a dataset preset or inline data is required")
	}

	algoName := spec.Algo
	if algoName == "" {
		algoName = "is-asgd"
	}
	algo, err := solver.ParseAlgo(algoName)
	if err != nil {
		return nil, err
	}

	eta := spec.Eta
	if eta == 0 {
		eta = 1e-4
	}
	switch spec.Objective {
	case "", "logistic-l1":
		r.obj = objective.LogisticL1{Eta: eta}
	case "sqhinge-l2":
		r.obj = objective.SquaredHingeL2{Lambda: eta}
	case "lsq-l2":
		r.obj = objective.LeastSquaresL2{Eta: eta}
	default:
		return nil, fmt.Errorf("serve: unknown objective %q", spec.Objective)
	}

	var bal balance.Mode
	switch spec.Balance {
	case "", "auto":
		bal = balance.Auto
	case "balance":
		bal = balance.ForceBalance
	case "shuffle":
		bal = balance.ForceShuffle
	case "sorted":
		bal = balance.Sorted
	case "lpt":
		bal = balance.LPT
	default:
		return nil, fmt.Errorf("serve: unknown balance mode %q", spec.Balance)
	}

	epochs := spec.Epochs
	if epochs == 0 {
		epochs = 10
	}
	step := spec.Step
	if step == 0 {
		step = 0.5
	}
	// Mirror solver validation synchronously (plus service-level resource
	// bounds) so a doomed or abusive spec gets a 400 at submission instead
	// of a 202 followed by an asynchronous failure — or a single request
	// spawning an unbounded number of worker goroutines.
	const (
		maxEpochs  = 100_000_000
		maxBatch   = 1 << 20
		maxThreads = 1 << 10
	)
	switch {
	case epochs < 0 || epochs > maxEpochs:
		return nil, fmt.Errorf("serve: epochs must be in [1, %d], got %d", maxEpochs, spec.Epochs)
	case step < 0 || math.IsNaN(step) || math.IsInf(step, 0):
		return nil, fmt.Errorf("serve: step must be positive and finite, got %g", spec.Step)
	case spec.StepDecay < 0 || spec.StepDecay > 1:
		return nil, fmt.Errorf("serve: step_decay must be in (0, 1], got %g", spec.StepDecay)
	case spec.Eta < 0 || math.IsNaN(spec.Eta) || math.IsInf(spec.Eta, 0):
		return nil, fmt.Errorf("serve: eta must be non-negative and finite, got %g", spec.Eta)
	case spec.Threads < 0 || spec.Threads > maxThreads:
		return nil, fmt.Errorf("serve: threads must be in [0, %d], got %d", maxThreads, spec.Threads)
	case spec.Batch < 0 || spec.Batch > maxBatch:
		return nil, fmt.Errorf("serve: batch must be in [0, %d], got %d", maxBatch, spec.Batch)
	case spec.EvalEvery < 0:
		return nil, fmt.Errorf("serve: eval_every must be non-negative, got %d", spec.EvalEvery)
	}
	threads := spec.Threads
	if np := runtime.GOMAXPROCS(0); threads > np {
		threads = np // more workers than cores only adds conflict
	}
	r.cfg = solver.Config{
		Algo: algo, Epochs: epochs, Step: step, StepDecay: spec.StepDecay,
		Threads: threads, Balance: bal, Batch: spec.Batch, Seed: spec.Seed,
		EvalEvery: spec.EvalEvery,
	}
	return r, nil
}

// Submit validates spec, registers a queued job and starts its worker
// goroutine. The returned Job is live: poll Status or wait on Done.
func (m *Manager) Submit(spec JobSpec) (*Job, error) {
	r, err := compile(spec)
	if err != nil {
		return nil, err
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrShuttingDown
	}
	m.nextID++
	id := fmt.Sprintf("job-%06d", m.nextID)
	model := spec.Model
	if model == "" {
		model = id
	}
	if !validName(model) {
		m.mu.Unlock()
		return nil, fmt.Errorf("serve: invalid model name %q (use letters, digits, '.', '_', '-')", spec.Model)
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	j := &Job{
		ID: id, cfg: r.cfg, model: model, state: StateQueued,
		algoName: r.cfg.Algo.String(), objName: r.obj.Name(),
		submitted: time.Now(),
		cancel:    cancel, done: make(chan struct{}),
	}
	if r.synth != nil {
		j.dsName = r.synth.Name
	} else {
		j.dsName = r.ds.Name
		j.samples = r.ds.N()
		j.dim = r.ds.Dim()
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.wg.Add(1)
	m.mu.Unlock()

	go m.run(ctx, j, r)
	return j, nil
}

// run executes one job: waits for a pool slot, trains, publishes and
// checkpoints. It is the only writer of terminal state.
func (m *Manager) run(ctx context.Context, j *Job, r *resolved) {
	defer m.wg.Done()
	defer close(j.done)
	defer j.cancel()

	// Bounded pool: block until a slot frees or the job is cancelled
	// while still queued.
	select {
	case m.sem <- struct{}{}:
		defer func() { <-m.sem }()
	case <-ctx.Done():
		m.finish(j, StateCancelled, "cancelled while queued", nil)
		return
	}
	// When cancellation and a free slot race (e.g. shutdown with queued
	// jobs), select may pick the slot; re-check so we do not synthesize a
	// large dataset and run an epoch-0 evaluation only to discard them.
	if ctx.Err() != nil {
		m.finish(j, StateCancelled, "cancelled while queued", nil)
		return
	}

	ds := r.ds
	if r.synth != nil {
		var err error
		ds, err = dataset.Synthesize(*r.synth)
		if err != nil {
			m.finish(j, StateFailed, fmt.Sprintf("synthesize: %v", err), nil)
			return
		}
	}

	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.samples = ds.N()
	j.dim = ds.Dim()
	j.mu.Unlock()

	cfg := r.cfg
	cfg.Progress = func(p metrics.Point) {
		j.mu.Lock()
		m.updates.Add(p.Iters - j.iters)
		j.iters = p.Iters
		j.curve = append(j.curve, p)
		j.mu.Unlock()
	}

	res, err := solver.Train(ctx, ds, r.obj, cfg)
	switch {
	case err != nil && ctx.Err() != nil:
		// Cancelled (DELETE or shutdown). Persist partial progress under
		// "<model>.partial" so the run can be resumed or inspected without
		// clobbering the checkpoint of a finished model of the same name
		// (Restore would otherwise silently regress it on restart), and do
		// not publish the model.
		m.finish(j, StateCancelled, err.Error(), nil)
		if res != nil && len(res.Weights) > 0 {
			m.saveCheckpoint(j, j.model+".partial", r.obj, res)
		}
	case err != nil:
		m.finish(j, StateFailed, err.Error(), nil)
	default:
		mdl := &Model{
			Name: j.model, Weights: res.Weights,
			Algo: res.Algo.String(), Objective: r.obj.Name(), Dataset: ds.Name,
			Epoch: res.Curve.Final().Epoch, Iters: res.Iters,
			obj: r.obj,
		}
		if pubErr := m.registry.Publish(mdl); pubErr != nil {
			m.finish(j, StateFailed, pubErr.Error(), nil)
			return
		}
		m.finish(j, StateDone, "", res)
		m.saveCheckpoint(j, j.model, r.obj, res)
	}
}

// finish records a terminal state.
func (m *Manager) finish(j *Job, state JobState, errMsg string, res *solver.Result) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	j.errMsg = errMsg
	j.finished = time.Now()
	if res != nil && len(j.curve) == 0 {
		j.curve = res.Curve
	}
}

// saveCheckpoint persists the job's result under the given model name;
// persistence failures are recorded on the job's error rather than
// failing it (a finished model is already published and servable).
func (m *Manager) saveCheckpoint(j *Job, name string, obj objective.Objective, res *solver.Result) {
	path := m.CheckpointPath(name)
	if path == "" {
		return
	}
	st := &checkpoint.State{
		Algo: res.Algo.String(), Objective: obj.Name(), Dataset: j.dsName,
		Epoch: res.Curve.Final().Epoch, Iters: res.Iters,
		Step: j.cfg.Step, Seed: j.cfg.Seed,
		Dim: len(res.Weights), Weights: res.Weights, Curve: res.Curve,
	}
	if err := checkpoint.SaveFile(path, st); err != nil {
		j.mu.Lock()
		if j.errMsg != "" {
			j.errMsg += "; "
		}
		j.errMsg += fmt.Sprintf("checkpoint: %v", err)
		j.mu.Unlock()
	}
}

// Get returns a job by id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs returns job statuses in submission order.
func (m *Manager) Jobs() []JobStatus {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Cancel requests cancellation of a queued or running job. Cancelling a
// terminal job is a no-op that still reports found=true.
func (m *Manager) Cancel(id string) error {
	j, ok := m.Get(id)
	if !ok {
		return ErrNotFound
	}
	j.cancel()
	return nil
}

// Stats is a telemetry snapshot for /healthz and /metrics.
type Stats struct {
	Queued, Running, Done, Failed, Cancelled int
	UpdatesTotal                             int64
	UpdatesPerSec                            float64
}

// Stats counts jobs by state and reports the solver update throughput.
func (m *Manager) Stats() Stats {
	var s Stats
	for _, st := range m.Jobs() {
		switch st.State {
		case StateQueued:
			s.Queued++
		case StateRunning:
			s.Running++
		case StateDone:
			s.Done++
		case StateFailed:
			s.Failed++
		case StateCancelled:
			s.Cancelled++
		}
	}
	s.UpdatesTotal = m.updates.Count()
	s.UpdatesPerSec = m.updates.Rate()
	return s
}

// Shutdown stops accepting submissions, cancels every queued and
// running job (their workers checkpoint partial progress) and waits for
// the workers to drain, or for ctx to expire.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.baseCancel()

	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown timed out: %w", ctx.Err())
	}
}
