package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/isasgd/isasgd/internal/snapshot"
)

// BatcherConfig sizes the predict micro-batcher.
type BatcherConfig struct {
	// Window is how long the leader of a forming batch holds it open for
	// followers to coalesce into — microsecond scale: long enough that
	// concurrent requests land in one flush, short enough to be invisible
	// next to network and JSON time. <= 0 flushes immediately (the
	// batcher degenerates to the unbatched path plus queueing overhead,
	// so callers normally treat a zero window as "batching disabled" and
	// skip constructing a Batcher at all).
	Window time.Duration
	// MaxBatch flushes a forming batch early once this many requests
	// have coalesced, bounding both the latency outliers a huge flush
	// would cause and the work done under one version resolve.
	// Default 64.
	MaxBatch int
}

func (c BatcherConfig) withDefaults() BatcherConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.Window < 0 {
		c.Window = 0
	}
	return c
}

// Batcher coalesces concurrent predict requests for the same model onto
// one snapshot resolve and one scoring pass. The scheme is
// leader/follower combining, not a dedicated flusher goroutine: the
// first request to arrive at an idle model becomes the leader, holds the
// batch open for Window (or until MaxBatch requests have joined), then
// resolves the model map and weight version once and scores every
// coalesced request against that single consistent snapshot. Followers
// park on a pooled 1-buffered channel. At low concurrency the cost is
// one Window of added latency; at high concurrency N requests share one
// resolve, one telemetry walk and one cache-hot scoring loop, which is
// where the p99 win comes from.
//
// The steady-state path stays 0 allocs/op: calls, their wake channels
// and the pending slices are all pooled, and the leader's flush timer is
// reused across generations (only one leader per model exists at a
// time).
type Batcher struct {
	reg *Registry
	cfg BatcherConfig

	mu     sync.Mutex // guards map growth; readers go through the atomic pointer
	models atomic.Pointer[map[string]*modelBatcher]
}

// NewBatcher wraps reg's predict path with per-model micro-batching.
func NewBatcher(reg *Registry, cfg BatcherConfig) *Batcher {
	b := &Batcher{reg: reg, cfg: cfg.withDefaults()}
	m := make(map[string]*modelBatcher)
	b.models.Store(&m)
	return b
}

// Predict is Registry.Predict with micro-batching: the batch joins the
// model's forming flush and the call returns once that flush scored it.
// The response must be Released like any Registry.Predict response.
func (b *Batcher) Predict(name string, batch []Instance) (*PredictResponse, error) {
	// Unknown names answer immediately — and, importantly, never create
	// a modelBatcher, so a scanner probing random names cannot grow the
	// batcher map without bound.
	if _, ok := b.reg.load()[name]; !ok {
		return nil, fmt.Errorf("serve: model %q: %w", name, ErrNotFound)
	}
	return b.forModel(name).predict(batch)
}

// forModel returns (creating on first use) the model's batcher. Reads
// are one atomic load; creation clones the map copy-on-write like the
// registry itself.
func (b *Batcher) forModel(name string) *modelBatcher {
	if mb, ok := (*b.models.Load())[name]; ok {
		return mb
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	cur := *b.models.Load()
	if mb, ok := cur[name]; ok {
		return mb
	}
	mb := newModelBatcher(b.reg, name, b.cfg)
	next := make(map[string]*modelBatcher, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[name] = mb
	b.models.Store(&next)
	return mb
}

// Resolves returns how many version resolves (= flushes) the named
// model's batcher has performed — test and experiment observability for
// the coalescing claim (N concurrent predicts, far fewer resolves).
func (b *Batcher) Resolves(name string) int64 {
	if mb, ok := (*b.models.Load())[name]; ok {
		return mb.resolves.Load()
	}
	return 0
}

// batchCall is one request parked in a forming batch. done is 1-buffered
// and lives as long as the pooled call: the flusher posts exactly one
// token per generation and the owner (leader included — its own flush
// posts its token) consumes exactly one.
type batchCall struct {
	batch []Instance
	resp  *PredictResponse
	err   error
	done  chan struct{}
}

var batchCalls = sync.Pool{New: func() any {
	return &batchCall{done: make(chan struct{}, 1)}
}}

// callSlices pools the pending-queue backing arrays. A generation's
// slice travels: mb.pending → leader's flush → back to the pool; pooling
// (rather than two swapped buffers) covers overlapping flushes, where a
// new leader forms a batch while the previous flush still scores.
var callSlices = sync.Pool{New: func() any {
	s := make([]*batchCall, 0, 16)
	return &s
}}

type modelBatcher struct {
	reg  *Registry
	name string
	cfg  BatcherConfig

	mu      sync.Mutex
	pending []*batchCall
	leader  bool          // a leader is currently holding the batch open
	full    chan struct{} // 1-buffered; posted when pending reaches MaxBatch
	timer   *time.Timer   // the leader's window timer, reused across generations

	resolves atomic.Int64
}

func newModelBatcher(reg *Registry, name string, cfg BatcherConfig) *modelBatcher {
	t := time.NewTimer(time.Hour)
	if !t.Stop() {
		<-t.C
	}
	return &modelBatcher{
		reg: reg, name: name, cfg: cfg,
		pending: make([]*batchCall, 0, cfg.MaxBatch),
		full:    make(chan struct{}, 1),
		timer:   t,
	}
}

func (mb *modelBatcher) predict(batch []Instance) (*PredictResponse, error) {
	c := batchCalls.Get().(*batchCall)
	c.batch, c.resp, c.err = batch, nil, nil

	isLeader := false
	mb.mu.Lock()
	mb.pending = append(mb.pending, c)
	if !mb.leader {
		mb.leader = true
		isLeader = true
	} else if len(mb.pending) >= mb.cfg.MaxBatch {
		select {
		case mb.full <- struct{}{}:
		default:
		}
	}
	mb.mu.Unlock()

	if isLeader {
		// Hold the window open unless the batch cannot grow (MaxBatch 1)
		// or flush-immediately was configured.
		if mb.cfg.Window > 0 && mb.cfg.MaxBatch > 1 {
			mb.timer.Reset(mb.cfg.Window)
			select {
			case <-mb.timer.C:
			case <-mb.full:
				if !mb.timer.Stop() {
					<-mb.timer.C
				}
			}
		}
		mb.mu.Lock()
		calls := mb.pending
		sp := callSlices.Get().(*[]*batchCall)
		mb.pending = (*sp)[:0]
		mb.leader = false
		// Drain a full-token posted for the generation being taken, so it
		// cannot wake the next leader early.
		select {
		case <-mb.full:
		default:
		}
		mb.mu.Unlock()

		mb.flush(calls)
		*sp = calls[:0]
		callSlices.Put(sp)
	}

	<-c.done
	resp, err := c.resp, c.err
	c.batch, c.resp, c.err = nil, nil, nil
	batchCalls.Put(c)
	return resp, err
}

// flush answers every coalesced call from ONE model-map load and ONE
// version load — the whole generation scores against the same immutable
// snapshot. Per-call validation failures stay per-call: each request
// gets exactly the result it would have gotten unbatched.
func (mb *modelBatcher) flush(calls []*batchCall) {
	m, ok := mb.reg.load()[mb.name]
	var v *snapshot.Version
	if ok {
		v = m.Store.Load()
	}
	mb.resolves.Add(1)
	for _, c := range calls {
		if v == nil {
			c.err = fmt.Errorf("serve: model %q: %w", mb.name, ErrNotFound)
		} else {
			c.resp, c.err = predictAtVersion(m, v, c.batch)
		}
		c.done <- struct{}{}
	}
}
