package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/isasgd/isasgd/internal/checkpoint"
	"github.com/isasgd/isasgd/internal/obs"
)

// maxBodyBytes bounds request bodies (inline LibSVM payloads, batched
// predict requests, checkpoint imports) so one client cannot exhaust
// memory.
const maxBodyBytes = 64 << 20

// ServerOptions select the fleet-facing behaviors of a Server beyond
// the default single-process configuration.
type ServerOptions struct {
	// ReadOnly rejects every mutating endpoint (job submission, model
	// deletion, checkpoint import) with 403 — the replica posture:
	// writes belong on the origin, replicas serve reads. Predict stays
	// available (it is a read despite its POST method).
	ReadOnly bool
	// Batch enables predict micro-batching when Batch.Window > 0:
	// concurrent predicts for one model coalesce onto a single snapshot
	// resolve and scoring pass (see Batcher).
	Batch BatcherConfig
	// Admission enables per-model admission control when
	// Admission.MaxInFlight > 0: bounded concurrency and queueing with
	// 429 + Retry-After shedding past the bound (see Admission).
	Admission AdmissionConfig
	// ReplicateWindow is the server-side long-poll ceiling of
	// GET /v1/replicate: a poll with no fresher version to report is
	// answered (without weights) after this long. Default 25s.
	ReplicateWindow time.Duration
}

// Server is the HTTP facade over a Manager and its Registry. Every
// request passes through obs.Middleware, which assigns (or propagates)
// an X-Request-ID, counts it into the service metrics registry, and
// logs one structured line through the manager's logger.
type Server struct {
	mgr     *Manager
	mux     *http.ServeMux
	handler http.Handler
	start   time.Time

	readOnly   bool
	batcher    *Batcher   // nil = unbatched predicts
	admit      *Admission // nil = no admission control
	retryAfter string     // precomputed Retry-After header value for sheds
	replWindow time.Duration

	// Predict latency breakdown, pre-resolved at construction so the
	// handler touches stable atomic instruments, never a vec lookup.
	phaseDecode  *obs.Histogram
	phaseResolve *obs.Histogram
	phaseScore   *obs.Histogram
	phaseEncode  *obs.Histogram
}

// NewServer builds the router with default options. The manager's
// logger is captured here — install it (Manager.SetLogger) before
// constructing the server.
func NewServer(mgr *Manager) *Server { return NewServerOpts(mgr, ServerOptions{}) }

// NewServerOpts is NewServer with fleet options (read-only replica
// posture, predict micro-batching, admission control).
func NewServerOpts(mgr *Manager, opts ServerOptions) *Server {
	s := &Server{mgr: mgr, mux: http.NewServeMux(), start: time.Now()}
	s.readOnly = opts.ReadOnly
	s.replWindow = opts.ReplicateWindow
	if s.replWindow <= 0 {
		s.replWindow = 25 * time.Second
	}
	if opts.Batch.Window > 0 {
		s.batcher = NewBatcher(mgr.Registry(), opts.Batch)
	}
	if opts.Admission.MaxInFlight > 0 {
		s.admit = NewAdmission(mgr.Obs(), opts.Admission)
		s.retryAfter = strconv.Itoa(s.admit.RetryAfterSeconds())
	}
	s.mux.HandleFunc("POST /v1/jobs", s.submitJob)
	s.mux.HandleFunc("POST /v1/jobs/stream", s.submitStreamJob)
	s.mux.HandleFunc("GET /v1/jobs", s.listJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.getJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/curve", s.getCurve)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancelJob)
	s.mux.HandleFunc("GET /v1/models", s.listModels)
	s.mux.HandleFunc("DELETE /v1/models/{name}", s.deleteModel)
	s.mux.HandleFunc("POST /v1/models/{name}/predict", s.predict)
	s.mux.HandleFunc("GET /v1/models/{name}/checkpoint", s.exportModel)
	s.mux.HandleFunc("PUT /v1/models/{name}/checkpoint", s.importModel)
	s.mux.HandleFunc("GET /v1/replicate", s.replicate)
	s.mux.HandleFunc("GET /healthz", s.healthz)

	o := mgr.Obs()
	s.mux.Handle("GET /metrics", o.Handler())
	phase := o.SummaryVec("isasgd_predict_phase_seconds",
		"Predict request latency breakdown by handler phase.", 1e-9, "phase")
	s.phaseDecode = phase.With("decode")
	s.phaseResolve = phase.With("resolve")
	s.phaseScore = phase.With("score")
	s.phaseEncode = phase.With("encode")

	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// A read-only replica serves reads (predict included — a read
		// despite its POST method) and refuses every mutation in one
		// place, before routing.
		if s.readOnly && mutating(r) {
			writeError(w, http.StatusForbidden,
				"read-only replica: %s %s is disabled here, talk to the origin", r.Method, r.URL.Path)
			return
		}
		// The streaming-upload endpoint exists precisely for payloads too
		// large to buffer, and its body is consumed in O(blockSize)
		// memory, so the request-size cap does not apply there.
		if r.URL.Path != "/v1/jobs/stream" {
			r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		}
		s.mux.ServeHTTP(w, r)
	})
	s.handler = obs.Middleware(mgr.Logger(), obs.NewHTTPMetrics(o), inner)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// mutating reports whether the request would change server state —
// what a read-only replica refuses. Predict is the one POST that reads.
func mutating(r *http.Request) bool {
	switch r.Method {
	case http.MethodGet, http.MethodHead, http.MethodOptions:
		return false
	}
	return !strings.HasSuffix(r.URL.Path, "/predict")
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func (s *Server) submitJob(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if !decodeJSON(w, r, &spec) {
		return
	}
	j, err := s.mgr.SubmitCtx(r.Context(), spec)
	switch {
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
	default:
		writeJSON(w, http.StatusAccepted, j.Status())
	}
}

// submitStreamJob trains online over the request body while it uploads:
// the LibSVM payload is never buffered whole. Two encodings are
// accepted: multipart/form-data with a "spec" part (JSON JobSpec)
// followed by a "data" part, or a raw LibSVM body with the JSON spec in
// the "spec" query parameter. The response is the job's terminal status.
func (s *Server) submitStreamJob(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	data := io.Reader(nil)

	if mr, err := r.MultipartReader(); err == nil {
		specSeen := false
		for {
			part, err := mr.NextPart()
			if err == io.EOF {
				break
			}
			if err != nil {
				writeError(w, http.StatusBadRequest, "bad multipart body: %v", err)
				return
			}
			switch part.FormName() {
			case "spec":
				// The endpoint as a whole is exempt from the request-size
				// cap (the data part streams in O(blockSize)), so the spec
				// part — which json.Decode buffers — needs its own bound.
				const maxSpecBytes = 1 << 20
				if err := json.NewDecoder(io.LimitReader(part, maxSpecBytes)).Decode(&spec); err != nil {
					writeError(w, http.StatusBadRequest, "bad spec part: %v", err)
					return
				}
				specSeen = true
			case "data":
				if !specSeen {
					writeError(w, http.StatusBadRequest, "spec part must precede data part")
					return
				}
				data = part
			default:
				writeError(w, http.StatusBadRequest, "unknown part %q (want spec, data)", part.FormName())
				return
			}
			if data != nil {
				break // stream the data part; anything after it is ignored
			}
		}
		if data == nil {
			writeError(w, http.StatusBadRequest, "multipart body needs a data part")
			return
		}
	} else {
		if sp := r.URL.Query().Get("spec"); sp != "" {
			if err := json.Unmarshal([]byte(sp), &spec); err != nil {
				writeError(w, http.StatusBadRequest, "bad spec query parameter: %v", err)
				return
			}
		}
		data = r.Body
	}

	j, err := s.mgr.SubmitStream(r.Context(), spec, data)
	switch {
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
	default:
		st := j.Status()
		code := http.StatusOK
		if st.State == StateFailed {
			code = http.StatusUnprocessableEntity
		}
		writeJSON(w, code, st)
	}
}

func (s *Server) listJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.Jobs())
}

func (s *Server) jobOr404(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "job %q not found", r.PathValue("id"))
	}
	return j, ok
}

func (s *Server) getJob(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobOr404(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) getCurve(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobOr404(w, r); ok {
		writeJSON(w, http.StatusOK, j.CurveResponse())
	}
}

func (s *Server) cancelJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	if j.Status().State.Terminal() {
		writeJSON(w, http.StatusOK, j.Status())
		return
	}
	_ = s.mgr.Cancel(j.ID)
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) listModels(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.Registry().List())
}

func (s *Server) deleteModel(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.mgr.Registry().Delete(name) {
		writeError(w, http.StatusNotFound, "model %q not found", name)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// predict scores a batch and stamps the handler's latency breakdown
// into isasgd_predict_phase_seconds: decode (JSON parse), resolve (the
// model-map and snapshot-version loads the batch is answered from),
// score (validation + the dot products), encode (JSON render). The
// scoring core (Registry.Predict) itself stays allocation-free; the
// phase timers are handler-side and cost four clock reads.
func (s *Server) predict(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// Admission control first, before any decode work is spent: a shed
	// request costs the server almost nothing, which is the point —
	// saturation degrades to fast 429s with a Retry-After hint instead
	// of every request crawling through an unbounded queue. Unknown
	// names bypass the gate (they 404 below without holding a slot, and
	// name-scanning traffic cannot grow the per-model gate map).
	if s.admit != nil {
		if _, known := s.mgr.Registry().Get(name); known {
			g, ok := s.admit.Admit(r.Context(), name)
			if !ok {
				w.Header().Set("Retry-After", s.retryAfter)
				writeError(w, http.StatusTooManyRequests,
					"model %q admission queue is full, retry after %ss", name, s.retryAfter)
				return
			}
			defer g.Release()
		}
	}
	var req PredictRequest
	t0 := time.Now()
	if !decodeJSON(w, r, &req) {
		return
	}
	t1 := time.Now()
	s.phaseDecode.ObserveDuration(t1.Sub(t0))
	batch := req.Instances
	if batch == nil {
		if len(req.Indices) == 0 && len(req.Values) == 0 {
			writeError(w, http.StatusBadRequest, "provide instances or indices/values")
			return
		}
		batch = []Instance{{Indices: req.Indices, Values: req.Values}}
	}
	// Resolve phase: the same two atomic loads Predict performs — timed
	// here so the breakdown separates snapshot resolution from scoring.
	if m, ok := s.mgr.Registry().Get(name); ok {
		_ = m.Version()
	}
	t2 := time.Now()
	s.phaseResolve.ObserveDuration(t2.Sub(t1))
	var resp *PredictResponse
	var err error
	if s.batcher != nil {
		resp, err = s.batcher.Predict(name, batch)
	} else {
		resp, err = s.mgr.Registry().Predict(name, batch)
	}
	t3 := time.Now()
	switch {
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, "%v", err)
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
	default:
		s.phaseScore.ObserveDuration(t3.Sub(t2))
		s.mgr.Registry().ObserveLatency(name, t3.Sub(t1))
		writeJSON(w, http.StatusOK, resp)
		resp.Release()
		s.phaseEncode.ObserveDuration(time.Since(t3))
	}
}

func (s *Server) exportModel(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	m, ok := s.mgr.Registry().Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "model %q not found", name)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", name+checkpoint.Ext))
	if err := checkpoint.Save(w, m.Checkpoint()); err != nil {
		// Headers are gone; all we can do is drop the connection.
		panic(http.ErrAbortHandler)
	}
}

func (s *Server) importModel(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !validName(name) {
		writeError(w, http.StatusBadRequest, "invalid model name %q", name)
		return
	}
	st, err := checkpoint.Load(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad checkpoint: %v", err)
		return
	}
	io.Copy(io.Discard, r.Body) //nolint:errcheck // drain for keep-alive
	m := ModelFromCheckpoint(name, st)
	if err := s.mgr.Registry().Publish(m); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if path := s.mgr.CheckpointPath(name); path != "" {
		if err := checkpoint.SaveFile(path, st); err != nil {
			writeError(w, http.StatusInternalServerError, "model published but persistence failed: %v", err)
			return
		}
	}
	v := m.Version()
	writeJSON(w, http.StatusOK, ModelInfo{
		Name: name, Algo: m.Algo, Objective: m.Objective, Dataset: m.Dataset,
		Dim: v.Dim(), Epoch: v.Epoch, Iters: v.Iters, Seq: v.Seq,
		DType: m.Store.DType(), Published: m.Published,
	})
}

// replicate answers one replication long-poll (GET /v1/replicate
// ?model=name&since=seq): it blocks on the model's snapshot store until
// a version newer than the caller's cursor exists — the same Store.Wait
// primitive behind the cluster pull endpoint — or the server's poll
// window expires, in which case the current version is described
// without weights so the caller knows it is current and re-polls.
// Replicas (serve.Replicator, cmd/isasgd-serve -origin) drive this in a
// loop; it works equally against a replica, so replicas can chain.
func (s *Server) replicate(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("model")
	if name == "" {
		writeError(w, http.StatusBadRequest, "missing model query parameter")
		return
	}
	var since uint64
	if q := r.URL.Query().Get("since"); q != "" {
		var err error
		if since, err = strconv.ParseUint(q, 10, 64); err != nil {
			writeError(w, http.StatusBadRequest, "bad since %q: %v", q, err)
			return
		}
	}
	m, ok := s.mgr.Registry().Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "model %q not found", name)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.replWindow)
	defer cancel()
	v := m.Store.Wait(ctx, since)
	if v == nil {
		// Window expired (or the client left): describe the current
		// version, weights omitted — the registry guarantees at least one.
		v = m.Store.Load()
	}
	writeJSON(w, http.StatusOK, replicateResponseFor(m, v, since))
}

func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	st := s.mgr.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":       "ok",
		"uptime_sec":   time.Since(s.start).Seconds(),
		"jobs_running": st.Running,
		"jobs_queued":  st.Queued,
		"models":       len(s.mgr.Registry().List()),
	})
}
