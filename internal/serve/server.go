package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/isasgd/isasgd/internal/checkpoint"
	"github.com/isasgd/isasgd/internal/obs"
)

// maxBodyBytes bounds request bodies (inline LibSVM payloads, batched
// predict requests, checkpoint imports) so one client cannot exhaust
// memory.
const maxBodyBytes = 64 << 20

// Server is the HTTP facade over a Manager and its Registry. Every
// request passes through obs.Middleware, which assigns (or propagates)
// an X-Request-ID, counts it into the service metrics registry, and
// logs one structured line through the manager's logger.
type Server struct {
	mgr     *Manager
	mux     *http.ServeMux
	handler http.Handler
	start   time.Time

	// Predict latency breakdown, pre-resolved at construction so the
	// handler touches stable atomic instruments, never a vec lookup.
	phaseDecode  *obs.Histogram
	phaseResolve *obs.Histogram
	phaseScore   *obs.Histogram
	phaseEncode  *obs.Histogram
}

// NewServer builds the router. The manager's logger is captured here —
// install it (Manager.SetLogger) before constructing the server.
func NewServer(mgr *Manager) *Server {
	s := &Server{mgr: mgr, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("POST /v1/jobs", s.submitJob)
	s.mux.HandleFunc("POST /v1/jobs/stream", s.submitStreamJob)
	s.mux.HandleFunc("GET /v1/jobs", s.listJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.getJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/curve", s.getCurve)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancelJob)
	s.mux.HandleFunc("GET /v1/models", s.listModels)
	s.mux.HandleFunc("DELETE /v1/models/{name}", s.deleteModel)
	s.mux.HandleFunc("POST /v1/models/{name}/predict", s.predict)
	s.mux.HandleFunc("GET /v1/models/{name}/checkpoint", s.exportModel)
	s.mux.HandleFunc("PUT /v1/models/{name}/checkpoint", s.importModel)
	s.mux.HandleFunc("GET /healthz", s.healthz)

	o := mgr.Obs()
	s.mux.Handle("GET /metrics", o.Handler())
	phase := o.SummaryVec("isasgd_predict_phase_seconds",
		"Predict request latency breakdown by handler phase.", 1e-9, "phase")
	s.phaseDecode = phase.With("decode")
	s.phaseResolve = phase.With("resolve")
	s.phaseScore = phase.With("score")
	s.phaseEncode = phase.With("encode")

	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// The streaming-upload endpoint exists precisely for payloads too
		// large to buffer, and its body is consumed in O(blockSize)
		// memory, so the request-size cap does not apply there.
		if r.URL.Path != "/v1/jobs/stream" {
			r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		}
		s.mux.ServeHTTP(w, r)
	})
	s.handler = obs.Middleware(mgr.Logger(), obs.NewHTTPMetrics(o), inner)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func (s *Server) submitJob(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if !decodeJSON(w, r, &spec) {
		return
	}
	j, err := s.mgr.SubmitCtx(r.Context(), spec)
	switch {
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
	default:
		writeJSON(w, http.StatusAccepted, j.Status())
	}
}

// submitStreamJob trains online over the request body while it uploads:
// the LibSVM payload is never buffered whole. Two encodings are
// accepted: multipart/form-data with a "spec" part (JSON JobSpec)
// followed by a "data" part, or a raw LibSVM body with the JSON spec in
// the "spec" query parameter. The response is the job's terminal status.
func (s *Server) submitStreamJob(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	data := io.Reader(nil)

	if mr, err := r.MultipartReader(); err == nil {
		specSeen := false
		for {
			part, err := mr.NextPart()
			if err == io.EOF {
				break
			}
			if err != nil {
				writeError(w, http.StatusBadRequest, "bad multipart body: %v", err)
				return
			}
			switch part.FormName() {
			case "spec":
				// The endpoint as a whole is exempt from the request-size
				// cap (the data part streams in O(blockSize)), so the spec
				// part — which json.Decode buffers — needs its own bound.
				const maxSpecBytes = 1 << 20
				if err := json.NewDecoder(io.LimitReader(part, maxSpecBytes)).Decode(&spec); err != nil {
					writeError(w, http.StatusBadRequest, "bad spec part: %v", err)
					return
				}
				specSeen = true
			case "data":
				if !specSeen {
					writeError(w, http.StatusBadRequest, "spec part must precede data part")
					return
				}
				data = part
			default:
				writeError(w, http.StatusBadRequest, "unknown part %q (want spec, data)", part.FormName())
				return
			}
			if data != nil {
				break // stream the data part; anything after it is ignored
			}
		}
		if data == nil {
			writeError(w, http.StatusBadRequest, "multipart body needs a data part")
			return
		}
	} else {
		if sp := r.URL.Query().Get("spec"); sp != "" {
			if err := json.Unmarshal([]byte(sp), &spec); err != nil {
				writeError(w, http.StatusBadRequest, "bad spec query parameter: %v", err)
				return
			}
		}
		data = r.Body
	}

	j, err := s.mgr.SubmitStream(r.Context(), spec, data)
	switch {
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
	default:
		st := j.Status()
		code := http.StatusOK
		if st.State == StateFailed {
			code = http.StatusUnprocessableEntity
		}
		writeJSON(w, code, st)
	}
}

func (s *Server) listJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.Jobs())
}

func (s *Server) jobOr404(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "job %q not found", r.PathValue("id"))
	}
	return j, ok
}

func (s *Server) getJob(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobOr404(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) getCurve(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobOr404(w, r); ok {
		writeJSON(w, http.StatusOK, j.CurveResponse())
	}
}

func (s *Server) cancelJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	if j.Status().State.Terminal() {
		writeJSON(w, http.StatusOK, j.Status())
		return
	}
	_ = s.mgr.Cancel(j.ID)
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) listModels(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.Registry().List())
}

func (s *Server) deleteModel(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.mgr.Registry().Delete(name) {
		writeError(w, http.StatusNotFound, "model %q not found", name)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// predict scores a batch and stamps the handler's latency breakdown
// into isasgd_predict_phase_seconds: decode (JSON parse), resolve (the
// model-map and snapshot-version loads the batch is answered from),
// score (validation + the dot products), encode (JSON render). The
// scoring core (Registry.Predict) itself stays allocation-free; the
// phase timers are handler-side and cost four clock reads.
func (s *Server) predict(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req PredictRequest
	t0 := time.Now()
	if !decodeJSON(w, r, &req) {
		return
	}
	t1 := time.Now()
	s.phaseDecode.ObserveDuration(t1.Sub(t0))
	batch := req.Instances
	if batch == nil {
		if len(req.Indices) == 0 && len(req.Values) == 0 {
			writeError(w, http.StatusBadRequest, "provide instances or indices/values")
			return
		}
		batch = []Instance{{Indices: req.Indices, Values: req.Values}}
	}
	// Resolve phase: the same two atomic loads Predict performs — timed
	// here so the breakdown separates snapshot resolution from scoring.
	if m, ok := s.mgr.Registry().Get(name); ok {
		_ = m.Version()
	}
	t2 := time.Now()
	s.phaseResolve.ObserveDuration(t2.Sub(t1))
	resp, err := s.mgr.Registry().Predict(name, batch)
	t3 := time.Now()
	switch {
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, "%v", err)
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
	default:
		s.phaseScore.ObserveDuration(t3.Sub(t2))
		s.mgr.Registry().ObserveLatency(name, t3.Sub(t1))
		writeJSON(w, http.StatusOK, resp)
		resp.Release()
		s.phaseEncode.ObserveDuration(time.Since(t3))
	}
}

func (s *Server) exportModel(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	m, ok := s.mgr.Registry().Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "model %q not found", name)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", name+checkpoint.Ext))
	if err := checkpoint.Save(w, m.Checkpoint()); err != nil {
		// Headers are gone; all we can do is drop the connection.
		panic(http.ErrAbortHandler)
	}
}

func (s *Server) importModel(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !validName(name) {
		writeError(w, http.StatusBadRequest, "invalid model name %q", name)
		return
	}
	st, err := checkpoint.Load(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad checkpoint: %v", err)
		return
	}
	io.Copy(io.Discard, r.Body) //nolint:errcheck // drain for keep-alive
	m := ModelFromCheckpoint(name, st)
	if err := s.mgr.Registry().Publish(m); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if path := s.mgr.CheckpointPath(name); path != "" {
		if err := checkpoint.SaveFile(path, st); err != nil {
			writeError(w, http.StatusInternalServerError, "model published but persistence failed: %v", err)
			return
		}
	}
	v := m.Version()
	writeJSON(w, http.StatusOK, ModelInfo{
		Name: name, Algo: m.Algo, Objective: m.Objective, Dataset: m.Dataset,
		Dim: v.Dim(), Epoch: v.Epoch, Iters: v.Iters, Seq: v.Seq,
		DType: m.Store.DType(), Published: m.Published,
	})
}

func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	st := s.mgr.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":       "ok",
		"uptime_sec":   time.Since(s.start).Seconds(),
		"jobs_running": st.Running,
		"jobs_queued":  st.Queued,
		"models":       len(s.mgr.Registry().List()),
	})
}
