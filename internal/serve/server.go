package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/isasgd/isasgd/internal/checkpoint"
)

// maxBodyBytes bounds request bodies (inline LibSVM payloads, batched
// predict requests, checkpoint imports) so one client cannot exhaust
// memory.
const maxBodyBytes = 64 << 20

// Server is the HTTP facade over a Manager and its Registry.
type Server struct {
	mgr   *Manager
	mux   *http.ServeMux
	start time.Time
}

// NewServer builds the router.
func NewServer(mgr *Manager) *Server {
	s := &Server{mgr: mgr, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("POST /v1/jobs", s.submitJob)
	s.mux.HandleFunc("POST /v1/jobs/stream", s.submitStreamJob)
	s.mux.HandleFunc("GET /v1/jobs", s.listJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.getJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/curve", s.getCurve)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancelJob)
	s.mux.HandleFunc("GET /v1/models", s.listModels)
	s.mux.HandleFunc("DELETE /v1/models/{name}", s.deleteModel)
	s.mux.HandleFunc("POST /v1/models/{name}/predict", s.predict)
	s.mux.HandleFunc("GET /v1/models/{name}/checkpoint", s.exportModel)
	s.mux.HandleFunc("PUT /v1/models/{name}/checkpoint", s.importModel)
	s.mux.HandleFunc("GET /healthz", s.healthz)
	s.mux.HandleFunc("GET /metrics", s.metrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// The streaming-upload endpoint exists precisely for payloads too
	// large to buffer, and its body is consumed in O(blockSize) memory,
	// so the request-size cap does not apply there.
	if r.URL.Path != "/v1/jobs/stream" {
		r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	}
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func (s *Server) submitJob(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if !decodeJSON(w, r, &spec) {
		return
	}
	j, err := s.mgr.Submit(spec)
	switch {
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
	default:
		writeJSON(w, http.StatusAccepted, j.Status())
	}
}

// submitStreamJob trains online over the request body while it uploads:
// the LibSVM payload is never buffered whole. Two encodings are
// accepted: multipart/form-data with a "spec" part (JSON JobSpec)
// followed by a "data" part, or a raw LibSVM body with the JSON spec in
// the "spec" query parameter. The response is the job's terminal status.
func (s *Server) submitStreamJob(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	data := io.Reader(nil)

	if mr, err := r.MultipartReader(); err == nil {
		specSeen := false
		for {
			part, err := mr.NextPart()
			if err == io.EOF {
				break
			}
			if err != nil {
				writeError(w, http.StatusBadRequest, "bad multipart body: %v", err)
				return
			}
			switch part.FormName() {
			case "spec":
				// The endpoint as a whole is exempt from the request-size
				// cap (the data part streams in O(blockSize)), so the spec
				// part — which json.Decode buffers — needs its own bound.
				const maxSpecBytes = 1 << 20
				if err := json.NewDecoder(io.LimitReader(part, maxSpecBytes)).Decode(&spec); err != nil {
					writeError(w, http.StatusBadRequest, "bad spec part: %v", err)
					return
				}
				specSeen = true
			case "data":
				if !specSeen {
					writeError(w, http.StatusBadRequest, "spec part must precede data part")
					return
				}
				data = part
			default:
				writeError(w, http.StatusBadRequest, "unknown part %q (want spec, data)", part.FormName())
				return
			}
			if data != nil {
				break // stream the data part; anything after it is ignored
			}
		}
		if data == nil {
			writeError(w, http.StatusBadRequest, "multipart body needs a data part")
			return
		}
	} else {
		if sp := r.URL.Query().Get("spec"); sp != "" {
			if err := json.Unmarshal([]byte(sp), &spec); err != nil {
				writeError(w, http.StatusBadRequest, "bad spec query parameter: %v", err)
				return
			}
		}
		data = r.Body
	}

	j, err := s.mgr.SubmitStream(r.Context(), spec, data)
	switch {
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
	default:
		st := j.Status()
		code := http.StatusOK
		if st.State == StateFailed {
			code = http.StatusUnprocessableEntity
		}
		writeJSON(w, code, st)
	}
}

func (s *Server) listJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.Jobs())
}

func (s *Server) jobOr404(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "job %q not found", r.PathValue("id"))
	}
	return j, ok
}

func (s *Server) getJob(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobOr404(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) getCurve(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobOr404(w, r); ok {
		writeJSON(w, http.StatusOK, j.CurveResponse())
	}
}

func (s *Server) cancelJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	if j.Status().State.Terminal() {
		writeJSON(w, http.StatusOK, j.Status())
		return
	}
	_ = s.mgr.Cancel(j.ID)
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) listModels(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.Registry().List())
}

func (s *Server) deleteModel(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.mgr.Registry().Delete(name) {
		writeError(w, http.StatusNotFound, "model %q not found", name)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) predict(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req PredictRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	batch := req.Instances
	if batch == nil {
		if len(req.Indices) == 0 && len(req.Values) == 0 {
			writeError(w, http.StatusBadRequest, "provide instances or indices/values")
			return
		}
		batch = []Instance{{Indices: req.Indices, Values: req.Values}}
	}
	start := time.Now()
	resp, err := s.mgr.Registry().Predict(name, batch)
	switch {
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, "%v", err)
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
	default:
		s.mgr.Registry().ObserveLatency(name, time.Since(start))
		writeJSON(w, http.StatusOK, resp)
		resp.Release()
	}
}

func (s *Server) exportModel(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	m, ok := s.mgr.Registry().Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "model %q not found", name)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", name+checkpoint.Ext))
	if err := checkpoint.Save(w, m.Checkpoint()); err != nil {
		// Headers are gone; all we can do is drop the connection.
		panic(http.ErrAbortHandler)
	}
}

func (s *Server) importModel(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !validName(name) {
		writeError(w, http.StatusBadRequest, "invalid model name %q", name)
		return
	}
	st, err := checkpoint.Load(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad checkpoint: %v", err)
		return
	}
	io.Copy(io.Discard, r.Body) //nolint:errcheck // drain for keep-alive
	m := ModelFromCheckpoint(name, st)
	if err := s.mgr.Registry().Publish(m); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if path := s.mgr.CheckpointPath(name); path != "" {
		if err := checkpoint.SaveFile(path, st); err != nil {
			writeError(w, http.StatusInternalServerError, "model published but persistence failed: %v", err)
			return
		}
	}
	v := m.Version()
	writeJSON(w, http.StatusOK, ModelInfo{
		Name: name, Algo: m.Algo, Objective: m.Objective, Dataset: m.Dataset,
		Dim: v.Dim(), Epoch: v.Epoch, Iters: v.Iters, Seq: v.Seq,
		Published: m.Published,
	})
}

func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	st := s.mgr.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":       "ok",
		"uptime_sec":   time.Since(s.start).Seconds(),
		"jobs_running": st.Running,
		"jobs_queued":  st.Queued,
		"models":       len(s.mgr.Registry().List()),
	})
}

// metrics emits Prometheus-style text exposition (stdlib only): job
// gauges, solver update throughput, and per-model request counters.
func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	st := s.mgr.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# HELP isasgd_jobs Jobs by lifecycle state.\n")
	fmt.Fprintf(w, "# TYPE isasgd_jobs gauge\n")
	for _, kv := range []struct {
		label string
		n     int
	}{
		{"queued", st.Queued}, {"running", st.Running}, {"done", st.Done},
		{"failed", st.Failed}, {"cancelled", st.Cancelled},
	} {
		fmt.Fprintf(w, "isasgd_jobs{state=%q} %d\n", kv.label, kv.n)
	}
	fmt.Fprintf(w, "# HELP isasgd_updates_total Cumulative solver updates across all jobs.\n")
	fmt.Fprintf(w, "# TYPE isasgd_updates_total counter\n")
	fmt.Fprintf(w, "isasgd_updates_total %d\n", st.UpdatesTotal)
	fmt.Fprintf(w, "# HELP isasgd_updates_per_sec Average solver updates per second since start.\n")
	fmt.Fprintf(w, "# TYPE isasgd_updates_per_sec gauge\n")
	fmt.Fprintf(w, "isasgd_updates_per_sec %g\n", st.UpdatesPerSec)

	reg := s.mgr.Registry()
	models := reg.List() // already sorted by name
	fmt.Fprintf(w, "# HELP isasgd_model_requests_total Predict requests served per model.\n")
	fmt.Fprintf(w, "# TYPE isasgd_model_requests_total counter\n")
	for _, m := range models {
		fmt.Fprintf(w, "isasgd_model_requests_total{model=%q} %d\n", m.Name, m.Requests)
	}
	fmt.Fprintf(w, "# HELP isasgd_model_predictions_total Instances scored per model (batch sizes summed).\n")
	fmt.Fprintf(w, "# TYPE isasgd_model_predictions_total counter\n")
	for _, m := range models {
		fmt.Fprintf(w, "isasgd_model_predictions_total{model=%q} %d\n", m.Name, m.Predictions)
	}
	fmt.Fprintf(w, "# HELP isasgd_model_qps Average predict requests per second per model.\n")
	fmt.Fprintf(w, "# TYPE isasgd_model_qps gauge\n")
	for _, m := range models {
		fmt.Fprintf(w, "isasgd_model_qps{model=%q} %g\n", m.Name, m.QPS)
	}
	fmt.Fprintf(w, "# HELP isasgd_model_seq Current weight-snapshot sequence number per model (advances while the model trains live).\n")
	fmt.Fprintf(w, "# TYPE isasgd_model_seq gauge\n")
	for _, m := range models {
		live := 0
		if m.Live {
			live = 1
		}
		fmt.Fprintf(w, "isasgd_model_seq{model=%q,live=\"%d\"} %d\n", m.Name, live, m.Seq)
	}
	fmt.Fprintf(w, "# HELP isasgd_model_predict_latency_seconds Predict latency quantiles per model (log-bucket histogram estimate).\n")
	fmt.Fprintf(w, "# TYPE isasgd_model_predict_latency_seconds gauge\n")
	for _, mi := range models {
		m, ok := reg.Get(mi.Name)
		if !ok || m.Latency() == nil {
			continue
		}
		for _, q := range []float64{0.5, 0.95, 0.99} {
			fmt.Fprintf(w, "isasgd_model_predict_latency_seconds{model=%q,quantile=\"%g\"} %g\n",
				mi.Name, q, m.Latency().Quantile(q).Seconds())
		}
	}
}
