package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"github.com/isasgd/isasgd/internal/obs"
)

// scrape fetches /metrics once and returns the exposition body.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, obs.ContentType)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestMetricsEndToEnd is the telemetry acceptance test: one streaming
// job trained to completion plus a few predictions must leave every
// instrumented subsystem visible in a single GET /metrics scrape, and
// the whole exposition must parse as Prometheus text format 0.0.4.
func TestMetricsEndToEnd(t *testing.T) {
	ts, mgr, _ := testServer(t, 2)
	path := writeCorpusFile(t, streamCorpus(t, 512, 16, 3))
	mgr.SetStreamRoot(filepath.Dir(path))

	resp := postJSON(t, ts.URL+"/v1/jobs", streamSpec(path))
	sub := decodeBody[JobStatus](t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if st := pollJob(t, ts.URL, sub.ID); st.State != StateDone {
		t.Fatalf("job state = %s (err %q), want done", st.State, st.Error)
	}

	for i := 0; i < 4; i++ {
		pr := postJSON(t, ts.URL+"/v1/models/stream-model/predict",
			PredictRequest{Indices: []int{1, 5}, Values: []float64{0.5, -0.25}})
		if pr.StatusCode != http.StatusOK {
			t.Fatalf("predict: status %d", pr.StatusCode)
		}
		pr.Body.Close()
	}

	body := scrape(t, ts.URL)
	if err := obs.Lint(strings.NewReader(body)); err != nil {
		t.Fatalf("exposition does not lint: %v", err)
	}

	// One sample per instrumented subsystem: serving latency summary,
	// HTTP middleware, predict phase breakdown, training staleness and
	// throughput, IS diagnostics, alias rebuilds, job/update bookkeeping,
	// runtime gauges and build metadata.
	for _, want := range []string{
		`isasgd_model_predict_latency_seconds{model="stream-model",quantile="0.5"}`,
		`isasgd_model_predict_latency_seconds{model="stream-model",quantile="0.99"}`,
		`isasgd_model_predict_latency_seconds_count{model="stream-model"}`,
		`isasgd_model_requests_total{model="stream-model"}`,
		`isasgd_http_requests_total{method="POST",code="200"}`,
		`isasgd_http_request_seconds_count`,
		`isasgd_predict_phase_seconds_count{phase="decode"}`,
		`isasgd_predict_phase_seconds_count{phase="score"}`,
		`isasgd_train_staleness_updates_count{model="stream-model",worker="0"}`,
		`isasgd_train_rows_total{model="stream-model"}`,
		`isasgd_train_updates_total{model="stream-model"}`,
		`isasgd_train_updates_per_sec{model="stream-model"}`,
		`isasgd_is_effective_sample_size{model="stream-model"}`,
		`isasgd_is_rho{model="stream-model"}`,
		`isasgd_is_psi{model="stream-model"}`,
		`isasgd_is_reservoir_entries{model="stream-model"}`,
		`isasgd_is_alias_rebuilds_total{model="stream-model"}`,
		`isasgd_is_alias_rebuild_seconds_count{model="stream-model"}`,
		`isasgd_jobs{state="done"} 1`,
		`isasgd_updates_total`,
		`isasgd_goroutines`,
		`isasgd_heap_alloc_bytes`,
		`isasgd_build_info{version="`,
		`# TYPE isasgd_model_predict_latency_seconds summary`,
		`# TYPE isasgd_train_staleness_updates summary`,
		`# TYPE isasgd_http_requests_total counter`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", body)
	}
}

// TestRequestIDPropagation checks the tracing contract: a caller-supplied
// X-Request-ID is echoed on the response and stamped into the job's
// status; absent one, the middleware mints a fresh id.
func TestRequestIDPropagation(t *testing.T) {
	ts, _, _ := testServer(t, 1)

	spec := JobSpec{Model: "traced", Dataset: "small", Algo: "sgd", Epochs: 2, Step: 0.5, Seed: 1}
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.HeaderRequestID, "trace-me-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get(obs.HeaderRequestID); got != "trace-me-123" {
		t.Fatalf("response %s = %q, want echo of trace-me-123", obs.HeaderRequestID, got)
	}
	sub := decodeBody[JobStatus](t, resp)
	if sub.RequestID != "trace-me-123" {
		t.Fatalf("JobStatus.RequestID = %q, want trace-me-123", sub.RequestID)
	}
	st := pollJob(t, ts.URL, sub.ID)
	if st.RequestID != "trace-me-123" {
		t.Fatalf("terminal JobStatus.RequestID = %q, want trace-me-123", st.RequestID)
	}

	// No header: the middleware mints one and it still reaches the job.
	resp2 := postJSON(t, ts.URL+"/v1/jobs", JobSpec{Model: "traced2", Dataset: "small", Algo: "sgd", Epochs: 2, Step: 0.5, Seed: 2})
	minted := resp2.Header.Get(obs.HeaderRequestID)
	if minted == "" {
		t.Fatal("no minted X-Request-ID on response")
	}
	sub2 := decodeBody[JobStatus](t, resp2)
	if sub2.RequestID != minted {
		t.Fatalf("JobStatus.RequestID = %q, want minted %q", sub2.RequestID, minted)
	}
}
