package serve

import (
	"context"
	"errors"
	"os"
	"testing"
	"time"
)

// longSpec is a job that trains effectively forever (tiny inline
// dataset, a huge epoch budget, sparse evaluation) so tests can observe
// queued/running states and exercise cancellation; solver.Train checks
// its context between epochs, and epochs here take microseconds, so
// cancellation is prompt.
func longSpec(model string) JobSpec {
	return JobSpec{
		Model: model, Algo: "sgd",
		Data:      "1 1:1 3:0.5\n-1 2:1\n1 1:0.4 2:0.1\n-1 3:0.9\n",
		Epochs:    1 << 26,
		Step:      0.1,
		EvalEvery: 1 << 20,
	}
}

// waitState polls until the job reports the wanted state.
func waitState(t *testing.T, j *Job, want JobState) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if j.Status().State == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %s (currently %s)", j.ID, want, j.Status().State)
}

func TestCancelRunningJob(t *testing.T) {
	dir := t.TempDir()
	mgr := NewManager(NewRegistry(), 1, dir)
	defer mgr.Shutdown(context.Background())

	j, err := mgr.Submit(longSpec("slow"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateRunning)
	if err := mgr.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	st := j.Status()
	if st.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", st.State)
	}
	// Cancelled jobs never publish...
	if _, ok := mgr.Registry().Get("slow"); ok {
		t.Fatal("cancelled job must not publish its model")
	}
	// ...but do checkpoint partial progress for later inspection/resume,
	// under "<model>.partial" so a finished model's checkpoint of the
	// same name is never clobbered.
	if _, err := os.Stat(mgr.CheckpointPath("slow.partial")); err != nil {
		t.Fatalf("partial checkpoint missing: %v", err)
	}
	if _, err := os.Stat(mgr.CheckpointPath("slow")); err == nil {
		t.Fatal("cancelled job wrote the finished-model checkpoint path")
	}
	if err := mgr.Cancel("job-404404"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Cancel(unknown) = %v, want ErrNotFound", err)
	}
}

// TestPoolLimit checks the bounded worker pool: with pool=1 a second
// job stays queued until the first leaves, and a queued job can be
// cancelled without ever running.
func TestPoolLimit(t *testing.T) {
	mgr := NewManager(NewRegistry(), 1, "")
	defer mgr.Shutdown(context.Background())

	a, err := mgr.Submit(longSpec("a"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, a, StateRunning)

	b, err := mgr.Submit(longSpec("b"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := mgr.Submit(longSpec("c"))
	if err != nil {
		t.Fatal(err)
	}
	// The pool has one slot and it is held by a: b and c must still be
	// queued after a grace interval.
	time.Sleep(50 * time.Millisecond)
	if st := b.Status().State; st != StateQueued {
		t.Fatalf("b state = %s while pool is full, want queued", st)
	}
	if got := mgr.Stats(); got.Running != 1 || got.Queued != 2 {
		t.Fatalf("stats = %+v, want 1 running / 2 queued", got)
	}

	// Cancelling queued c never runs it.
	if err := mgr.Cancel(c.ID); err != nil {
		t.Fatal(err)
	}
	<-c.Done()
	if st := c.Status(); st.State != StateCancelled || st.Started != nil {
		t.Fatalf("c = %+v, want cancelled without starting", st)
	}

	// Freeing the slot promotes b.
	if err := mgr.Cancel(a.ID); err != nil {
		t.Fatal(err)
	}
	<-a.Done()
	waitState(t, b, StateRunning)
	if err := mgr.Cancel(b.ID); err != nil {
		t.Fatal(err)
	}
	<-b.Done()
}

// TestShutdownCheckpointsInFlight is the graceful-shutdown contract:
// Shutdown cancels running jobs, persists their partial progress, drains
// the pool and rejects later submissions.
func TestShutdownCheckpointsInFlight(t *testing.T) {
	dir := t.TempDir()
	mgr := NewManager(NewRegistry(), 2, dir)

	j, err := mgr.Submit(longSpec("inflight"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := mgr.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if st := j.Status().State; st != StateCancelled {
		t.Fatalf("in-flight job state = %s after shutdown, want cancelled", st)
	}
	if _, err := os.Stat(mgr.CheckpointPath("inflight.partial")); err != nil {
		t.Fatalf("shutdown did not checkpoint the in-flight job: %v", err)
	}
	if _, err := mgr.Submit(longSpec("late")); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("Submit after shutdown = %v, want ErrShuttingDown", err)
	}
}

func TestShutdownTimeout(t *testing.T) {
	mgr := NewManager(NewRegistry(), 1, "")
	j, err := mgr.Submit(longSpec("x"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateRunning)
	// An already-expired context: Shutdown must report the timeout
	// rather than hang (the job does still get cancelled underneath).
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := mgr.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown with dead context should report an error")
	}
	<-j.Done()
}

// TestCompileValidation pins the synchronous-400 contract: defaults are
// applied into the compiled config (so status and checkpoints report
// them), and invalid or abusive specs are rejected at submission.
func TestCompileValidation(t *testing.T) {
	r, err := compile(JobSpec{Dataset: "small"}, false, "")
	if err != nil {
		t.Fatal(err)
	}
	if r.cfg.Epochs != 10 || r.cfg.Step != 0.5 {
		t.Fatalf("defaults not applied: epochs=%d step=%g", r.cfg.Epochs, r.cfg.Step)
	}
	for name, spec := range map[string]JobSpec{
		"bad step_decay":  {Dataset: "small", StepDecay: 2},
		"negative eta":    {Dataset: "small", Eta: -1},
		"huge threads":    {Dataset: "small", Threads: 1 << 20},
		"negative batch":  {Dataset: "small", Batch: -1},
		"too many epochs": {Dataset: "small", Epochs: 1 << 40},
		"negative step":   {Dataset: "small", Step: -0.5},
	} {
		if _, err := compile(spec, false, ""); err == nil {
			t.Errorf("compile(%s) accepted an invalid spec", name)
		}
	}
}

func TestValidName(t *testing.T) {
	for _, ok := range []string{"m", "model-1", "a.b_c", "X9"} {
		if !validName(ok) {
			t.Errorf("validName(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", ".hidden", "a/b", "a b", "é", "../x"} {
		if validName(bad) {
			t.Errorf("validName(%q) = true, want false", bad)
		}
	}
}
