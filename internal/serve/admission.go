package serve

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/isasgd/isasgd/internal/obs"
)

// AdmissionConfig sizes the per-model admission gates.
type AdmissionConfig struct {
	// MaxInFlight is how many predict requests per model may be scoring
	// concurrently. Past it, requests queue. <= 0 disables admission
	// control entirely (Server constructs no Admission).
	MaxInFlight int
	// MaxQueue is how many requests per model may wait for a scoring
	// slot. Past it, requests are shed with 429 — the queue bound is
	// what turns saturation into fast rejections instead of a latency
	// collapse where every accepted request waits behind an unbounded
	// line. 0 sheds the instant all slots are busy.
	MaxQueue int
	// RetryAfter is the advisory Retry-After delay stamped on shed
	// responses. Default 1s.
	RetryAfter time.Duration
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Admission is bounded per-model admission queuing with load shedding.
// Each model gets MaxInFlight scoring slots and a MaxQueue-deep wait
// line; a request that finds both full is rejected immediately (the
// caller answers 429 + Retry-After) and counted on
// isasgd_http_shed_total{model}. Under saturation the accepted requests
// therefore keep a bounded latency profile — at most MaxQueue/MaxInFlight
// service times of queueing — while the excess degrades to cheap
// rejections the client can back off on.
type Admission struct {
	cfg     AdmissionConfig
	shedVec *obs.CounterVec

	mu    sync.Mutex // guards map growth; readers go through the atomic pointer
	gates atomic.Pointer[map[string]*gate]
}

// gate is one model's admission state. slots is a semaphore channel
// (send = acquire); waiting counts requests parked on a slot send.
type gate struct {
	slots    chan struct{}
	waiting  atomic.Int64
	maxQueue int64
	shed     *obs.Counter
}

// NewAdmission builds per-model admission gates registering the shed
// counter on o. MaxInFlight is clamped to at least 1.
func NewAdmission(o *obs.Registry, cfg AdmissionConfig) *Admission {
	cfg = cfg.withDefaults()
	if cfg.MaxInFlight < 1 {
		cfg.MaxInFlight = 1
	}
	a := &Admission{
		cfg: cfg,
		shedVec: o.CounterVec("isasgd_http_shed_total",
			"Predict requests shed (429) because the model's admission queue was full.", "model"),
	}
	m := make(map[string]*gate)
	a.gates.Store(&m)
	return a
}

// RetryAfterSeconds is the advisory client back-off for shed responses,
// in whole seconds (at least 1), ready for a Retry-After header.
func (a *Admission) RetryAfterSeconds() int {
	s := int(math.Ceil(a.cfg.RetryAfter.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}

// Shed returns how many requests the named model has shed.
func (a *Admission) Shed(model string) int64 {
	if g, ok := (*a.gates.Load())[model]; ok {
		return g.shed.Count()
	}
	return 0
}

// Admit tries to claim a scoring slot for one predict request against
// model. It returns (g, true) when admitted — the caller must call
// g.Release() when the request finishes — and (nil, false) when the
// request was shed (queue full; counted) or ctx ended while queued (the
// client is gone; not counted as shed).
func (a *Admission) Admit(ctx context.Context, model string) (*gate, bool) {
	g := a.gate(model)
	select {
	case g.slots <- struct{}{}:
		return g, true // fast path: a slot was free
	default:
	}
	if g.waiting.Add(1) > g.maxQueue {
		g.waiting.Add(-1)
		g.shed.Inc()
		return nil, false
	}
	defer g.waiting.Add(-1)
	select {
	case g.slots <- struct{}{}:
		return g, true
	case <-ctx.Done():
		return nil, false
	}
}

// Release returns the request's scoring slot.
func (g *gate) Release() { <-g.slots }

func (a *Admission) gate(model string) *gate {
	if g, ok := (*a.gates.Load())[model]; ok {
		return g
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	cur := *a.gates.Load()
	if g, ok := cur[model]; ok {
		return g
	}
	g := &gate{
		slots:    make(chan struct{}, a.cfg.MaxInFlight),
		maxQueue: int64(a.cfg.MaxQueue),
		shed:     a.shedVec.With(model),
	}
	next := make(map[string]*gate, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[model] = g
	a.gates.Store(&next)
	return g
}
