package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/isasgd/isasgd/internal/obs"
	"github.com/isasgd/isasgd/internal/snapshot"
)

// TestAdmissionSlotAndQueue exercises the gate state machine directly:
// MaxInFlight slots fill first, MaxQueue requests wait behind them, and
// the next arrival is shed and counted.
func TestAdmissionSlotAndQueue(t *testing.T) {
	a := NewAdmission(obs.NewRegistry(), AdmissionConfig{MaxInFlight: 1, MaxQueue: 1})

	g1, ok := a.Admit(context.Background(), "m")
	if !ok {
		t.Fatal("first request must take the free slot")
	}

	// Second request queues: park it in a goroutine.
	admitted := make(chan *gate, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		g, ok := a.Admit(context.Background(), "m")
		if !ok {
			t.Error("queued request must be admitted once the slot frees")
			admitted <- nil
			return
		}
		admitted <- g
	}()
	// Wait until it is actually parked so the third arrival sees a full
	// queue deterministically.
	deadline := time.Now().Add(5 * time.Second)
	for a.gate("m").waiting.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	if _, ok := a.Admit(context.Background(), "m"); ok {
		t.Fatal("third request must be shed: slot busy, queue full")
	}
	if got := a.Shed("m"); got != 1 {
		t.Fatalf("Shed(m) = %d, want 1", got)
	}

	g1.Release()
	wg.Wait()
	if g := <-admitted; g != nil {
		g.Release()
	}
	// Queue drained, slot free again: a fresh request sails through.
	if g, ok := a.Admit(context.Background(), "m"); !ok {
		t.Fatal("request against an idle gate must be admitted")
	} else {
		g.Release()
	}
}

// TestAdmissionCtxDoneNotShed pins down the accounting distinction: a
// client that gives up while queued is not a shed — the server never
// rejected it — so the shed counter must not move.
func TestAdmissionCtxDoneNotShed(t *testing.T) {
	a := NewAdmission(obs.NewRegistry(), AdmissionConfig{MaxInFlight: 1, MaxQueue: 4})
	g, _ := a.Admit(context.Background(), "m")
	defer g.Release()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() {
		_, ok := a.Admit(ctx, "m")
		done <- ok
	}()
	deadline := time.Now().Add(5 * time.Second)
	for a.gate("m").waiting.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if ok := <-done; ok {
		t.Fatal("canceled request must not be admitted")
	}
	if got := a.Shed("m"); got != 0 {
		t.Fatalf("Shed(m) = %d after ctx cancel, want 0 — client departures are not sheds", got)
	}
}

// TestAdmissionRetryAfterSeconds checks the header-value rounding:
// whole seconds, never below 1.
func TestAdmissionRetryAfterSeconds(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want int
	}{
		{0, 1}, {200 * time.Millisecond, 1}, {time.Second, 1}, {1500 * time.Millisecond, 2}, {3 * time.Second, 3},
	} {
		a := NewAdmission(obs.NewRegistry(), AdmissionConfig{MaxInFlight: 1, RetryAfter: tc.d})
		if got := a.RetryAfterSeconds(); got != tc.want {
			t.Errorf("RetryAfter %v: seconds = %d, want %d", tc.d, got, tc.want)
		}
	}
}

// TestPredictShedHTTP is the satellite's end-to-end shed check: with the
// model's only scoring slot held, a predict answers 429 with a
// Retry-After header and the shed shows up in /metrics; releasing the
// slot restores 200s.
func TestPredictShedHTTP(t *testing.T) {
	dir := t.TempDir()
	mgr := NewManager(NewRegistry(), 1, dir)
	srv := NewServerOpts(mgr, ServerOptions{
		Admission: AdmissionConfig{MaxInFlight: 1, MaxQueue: 0, RetryAfter: 2 * time.Second},
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	if err := mgr.Registry().Publish(&Model{Name: "m", Store: snapshot.Of(1, 1, []float64{1, -2, 3})}); err != nil {
		t.Fatal(err)
	}

	// Occupy the single slot the way a slow in-flight request would.
	g, ok := srv.admit.Admit(context.Background(), "m")
	if !ok {
		t.Fatal("setup: could not take the scoring slot")
	}

	body := map[string]any{"indices": []int{0, 2}, "values": []float64{1, 1}}
	resp := postJSON(t, ts.URL+"/v1/models/m/predict", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d with the slot held, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want %q", got, "2")
	}
	resp.Body.Close()

	if text := scrape(t, ts.URL); !strings.Contains(text, `isasgd_http_shed_total{model="m"} 1`) {
		t.Fatalf("/metrics missing the shed counter; got:\n%s", text)
	}

	// Unknown models bypass the gate entirely: 404, no slot math, and no
	// gate map entry for the probed name.
	resp = postJSON(t, ts.URL+"/v1/models/ghost/predict", body)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model status = %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
	if _, ok := (*srv.admit.gates.Load())["ghost"]; ok {
		t.Fatal("probing an unknown model grew the admission gate map")
	}

	g.Release()
	resp = postJSON(t, ts.URL+"/v1/models/m/predict", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d after release, want 200", resp.StatusCode)
	}
	resp.Body.Close()
}
