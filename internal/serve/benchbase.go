package serve

import (
	"fmt"
	"sync"

	"github.com/isasgd/isasgd/internal/kernel"
	"github.com/isasgd/isasgd/internal/metrics"
)

// Serving-benchmark support shared by the in-repo BenchmarkRegistryPredict
// and isasgd-bench's serving experiment (internal/experiments), so the
// two measure the same workload shape against the same baseline and
// BENCH_4.json stays comparable with `go test -bench RegistryPredict`.

// The shared serving-benchmark workload shape: single-instance requests
// of ServingBenchNNZ features against a model of ServingBenchDim
// coordinates — a modest feature count per request (the typical
// online-inference case), so the measurement is dominated by the
// registry machinery being compared rather than the shared dot product.
const (
	ServingBenchDim = 1 << 16
	ServingBenchNNZ = 8
)

// BaselineRegistry replicates the pre-snapshot registry read path —
// sync.RWMutex around the model map, a freshly allocated prediction
// slice and response per request — preserved as the fixed comparison
// baseline the copy-on-write registry is benchmarked against. It is not
// part of the serving API.
type BaselineRegistry struct {
	mu     sync.RWMutex
	models map[string]*baselineModel
}

type baselineModel struct {
	weights []float64
	qps     *metrics.Meter
}

// NewBaselineRegistry returns an empty baseline registry.
func NewBaselineRegistry() *BaselineRegistry {
	return &BaselineRegistry{models: make(map[string]*baselineModel)}
}

// Publish installs weights under name (write-locked, as the seed did).
func (r *BaselineRegistry) Publish(name string, w []float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.models[name] = &baselineModel{weights: w, qps: metrics.NewMeter()}
}

// Predict is the seed's request path: read-lock the map, validate,
// allocate the prediction slice and response, score, meter one request.
func (r *BaselineRegistry) Predict(name string, batch []Instance) (*PredictResponse, error) {
	r.mu.RLock()
	m, ok := r.models[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("serve: model %q: %w", name, ErrNotFound)
	}
	preds := make([]Prediction, len(batch))
	for i, in := range batch {
		if err := in.Validate(); err != nil {
			return nil, fmt.Errorf("serve: instance %d: %w", i, err)
		}
		score := kernel.DotClampedInts(m.weights, in.Indices, in.Values)
		label := 1.0
		if score < 0 {
			label = -1
		}
		preds[i] = Prediction{Score: score, Label: label}
	}
	m.qps.Add(1)
	return &PredictResponse{Model: name, Predictions: preds}, nil
}
