package snapshot

import (
	"sync"
	"testing"

	"github.com/isasgd/isasgd/internal/model"
)

// TestVersionW32 pins the lazy float32 view: narrowed exactly per
// coordinate, materialized once (every caller shares one backing slice),
// and safe under concurrent first access.
func TestVersionW32(t *testing.T) {
	w := []float64{0, 1.5, -2.25, 1e-3, 3.141592653589793}
	v := Of(1, 1, w).Load()
	w32 := v.W32()
	if len(w32) != len(w) {
		t.Fatalf("W32 length %d, want %d", len(w32), len(w))
	}
	for j, x := range w {
		if w32[j] != float32(x) {
			t.Fatalf("W32[%d] = %g, want %g", j, w32[j], float32(x))
		}
	}
	if &v.W32()[0] != &w32[0] {
		t.Fatal("second W32 call returned a different backing slice; want the cached one")
	}

	// Concurrent first touch: every goroutine must observe the same fully
	// initialized slice (the sync.Once publication).
	v2 := Of(2, 2, w).Load()
	var wg sync.WaitGroup
	got := make([][]float32, 8)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = v2.W32()
		}(i)
	}
	wg.Wait()
	for i := range got {
		if &got[i][0] != &got[0][0] {
			t.Fatal("concurrent W32 calls observed different slices")
		}
	}
}

// TestStoreDType pins the precision stamp: f64 until a producer declares
// otherwise, normalized spellings accepted, unknown names falling back
// to the safe f64 default.
func TestStoreDType(t *testing.T) {
	s := NewStore()
	if dt := s.DType(); dt != model.PrecisionF64 {
		t.Fatalf("fresh store DType = %q, want %q", dt, model.PrecisionF64)
	}
	s.SetDType("FP32") // spelled loosely; ParsePrecision normalizes
	if dt := s.DType(); dt != model.PrecisionF32 {
		t.Fatalf("DType after SetDType(FP32) = %q, want %q", dt, model.PrecisionF32)
	}
	s.SetDType("bf16") // unknown → safe default
	if dt := s.DType(); dt != model.PrecisionF64 {
		t.Fatalf("DType after unknown name = %q, want %q", dt, model.PrecisionF64)
	}
}
