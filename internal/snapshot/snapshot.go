// Package snapshot is the versioned model-publication pipeline: an
// immutable, sequence-numbered weight snapshot (Version) and a
// single-writer/many-reader Store built on an atomic pointer, so the
// serving read path is one atomic load — no locks, no allocation — while
// a training job keeps publishing fresher versions underneath it.
//
// The design leans on the same snapshot-tolerance argument the paper's
// perturbed-iterate analysis makes for training reads: a version cut
// mid-training (model.Params.Snapshot is documented to be an
// inconsistent cut under concurrent Hogwild writers) is still a valid
// model to serve, exactly as it is a valid point to evaluate. Publication
// is therefore allowed — encouraged — while workers are still updating
// the model.
//
// Reclamation: a retired Version is released to the garbage collector,
// not recycled, because lock-free readers may hold a *Version across an
// arbitrary number of later publishes; proving quiescence would need
// per-read tracking (hazard pointers, epochs) whose cost lands on the hot
// read path. Publication is the cold path — one O(dim) copy per epoch or
// block — so the GC trade keeps the fast path fast.
package snapshot

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/isasgd/isasgd/internal/model"
)

// Version is one immutable published model snapshot. Weights must never
// be mutated after publication; every reader holding the same *Version
// sees the same weights forever.
type Version struct {
	Seq     uint64 // publication sequence number, 1-based, strictly increasing
	Epoch   int    // completed epochs (batch) or ingested blocks (stream) at the cut
	Iters   int64  // cumulative updates applied at the cut
	Weights []float64

	// At is the wall-clock instant this version entered its store
	// (stamped by install). Replication consumers ship it alongside the
	// weights so a replica can report how far behind the origin's
	// publish it applied — the isasgd_replica_lag_seconds signal.
	At time.Time

	// w32 is the lazily narrowed float32 view behind W32; sound to cache
	// precisely because versions are immutable after publication.
	w32     []float32
	w32Once sync.Once
}

// Dim returns the snapshot dimensionality.
func (v *Version) Dim() int { return len(v.Weights) }

// W32 returns the weights narrowed to float32, computed once per version
// and cached (versions are immutable, so every caller shares one copy).
// When the producing run trained at float32 (Store.DType reports
// model.PrecisionF32) the published float64 weights are all exactly
// float32-representable, so the narrowed view is lossless: scoring
// against it with float64 accumulation (kernel.DotClampedInts32) is
// bitwise-identical to scoring Weights while moving half the weight
// bytes. Safe for concurrent use; the first call allocates.
func (v *Version) W32() []float32 {
	v.w32Once.Do(func() {
		w := make([]float32, len(v.Weights))
		for j, x := range v.Weights {
			w[j] = float32(x)
		}
		v.w32 = w
	})
	return v.w32
}

// Store is a single-writer/many-reader holder of the current Version.
// Load is wait-free (one atomic pointer load); Publish serializes
// writers internally, so multiple producers (a training loop plus a
// finalizing job manager) may share one store.
type Store struct {
	cur       atomic.Pointer[Version]
	mu        sync.Mutex // serializes writers; readers never take it
	onPublish func(*Version)
	onReject  func(epoch int, iters int64)
	rejects   atomic.Int64
	changed   chan struct{} // closed on publish; lazily (re)created under mu
	dtype     atomic.Value  // string; "" means model.PrecisionF64
}

// SetDType records the storage precision of the producing training run:
// model.PrecisionF32 when the weights were trained (and are therefore
// exactly representable) at float32, model.PrecisionF64 otherwise.
// Unrecognized names fall back to f64 — the safe default, since the
// float64 scorer handles any weights. Producers stamp this once before
// (or alongside) their first publish; readers may call DType at any
// time.
func (s *Store) SetDType(dt string) {
	p, err := model.ParsePrecision(dt)
	if err != nil {
		p = model.PrecisionF64
	}
	s.dtype.Store(p)
}

// DType returns the storage precision the producing run declared,
// defaulting to model.PrecisionF64. Serving readers use it to choose the
// half-bandwidth float32 scoring path (Version.W32) when it is lossless.
func (s *Store) DType() string {
	if dt, _ := s.dtype.Load().(string); dt != "" {
		return dt
	}
	return model.PrecisionF64
}

// SetOnPublish installs a hook invoked synchronously after each
// successful publish, on the publisher's goroutine with the writer lock
// held (hooks observe versions in order and must not call back into
// Publish). Serving consumers use it to register a model the moment its
// store becomes servable, independent of any evaluation cadence.
// Install before the first publish.
func (s *Store) SetOnPublish(fn func(*Version)) { s.onPublish = fn }

// SetOnReject installs a hook invoked whenever a publish is rejected for
// non-finite weights, with the epoch/iters the rejected cut carried. A
// rejected publish means serving silently stops advancing while the
// training job looks healthy, so producers (or the job manager owning
// the store) use this to log and count the event. Install before the
// first publish.
func (s *Store) SetOnReject(fn func(epoch int, iters int64)) { s.onReject = fn }

// Rejects returns how many publishes this store has rejected for
// non-finite weights.
func (s *Store) Rejects() int64 { return s.rejects.Load() }

// NewStore returns an empty store; Load reports nil until the first
// publish.
func NewStore() *Store { return &Store{} }

// Of returns a store pre-loaded with a single version copied from w —
// the static case (checkpoint imports, restored models, tests).
func Of(epoch int, iters int64, w []float64) *Store {
	s := NewStore()
	s.PublishCopy(epoch, iters, w)
	return s
}

// Load returns the current version, or nil if nothing was published yet.
// The returned version is immutable and remains valid (and constant)
// regardless of later publishes.
func (s *Store) Load() *Version { return s.cur.Load() }

// Seq returns the current publication sequence number (0 before the
// first publish).
func (s *Store) Seq() uint64 {
	if v := s.cur.Load(); v != nil {
		return v.Seq
	}
	return 0
}

// Publish cuts a new version: fill receives a buffer sized like the
// previous version's weights (nil on the first publish — fill is
// expected to allocate then, which model.Params.Snapshot does) and
// returns the filled slice. The new version becomes visible to Load
// before Publish returns, with Seq one past the previous version's.
//
// A snapshot containing a non-finite weight is rejected (Publish
// returns nil and the store keeps its current version): mid-training
// inconsistency is tolerated, divergence is not — a run whose weights
// went NaN/Inf must not reach serving readers. The training loop itself
// detects the divergence at completion (solver.Train's finiteness
// check) and fails the run, which withdraws the live model.
func (s *Store) Publish(epoch int, iters int64, fill func(dst []float64) []float64) *Version {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev := s.cur.Load()
	var seq uint64 = 1
	var dst []float64
	if prev != nil {
		seq = prev.Seq + 1
		// A fresh buffer per publish: prev.Weights may still be referenced
		// by readers (see the package comment on reclamation).
		dst = make([]float64, len(prev.Weights))
	}
	w := fill(dst)
	if model.FirstNonFinite(w) >= 0 {
		s.rejects.Add(1)
		if s.onReject != nil {
			s.onReject(epoch, iters)
		}
		return nil
	}
	v := &Version{Seq: seq, Epoch: epoch, Iters: iters, Weights: w}
	s.install(v)
	return v
}

// install makes v the current version and wakes long-poll waiters.
// Caller holds s.mu.
func (s *Store) install(v *Version) {
	if v.At.IsZero() {
		v.At = time.Now()
	}
	s.cur.Store(v)
	if s.changed != nil {
		close(s.changed)
		s.changed = nil
	}
	if s.onPublish != nil {
		s.onPublish(v)
	}
}

// Restore seeds the store with a version at an explicit sequence number —
// the resume path: a restarted coordinator or job manager re-publishes
// its checkpointed weights at the checkpointed seq, so consumers that
// long-poll "give me anything newer than seq" resume exactly where they
// left off instead of re-observing history from 1. Restore refuses to
// move the sequence backwards and applies the same non-finite rejection
// as Publish.
func (s *Store) Restore(seq uint64, epoch int, iters int64, w []float64) (*Version, error) {
	if seq == 0 {
		return nil, fmt.Errorf("snapshot: Restore needs seq >= 1")
	}
	if j := model.FirstNonFinite(w); j >= 0 {
		s.rejects.Add(1)
		if s.onReject != nil {
			s.onReject(epoch, iters)
		}
		return nil, fmt.Errorf("snapshot: non-finite weight %g at coordinate %d", w[j], j)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev := s.cur.Load(); prev != nil && prev.Seq >= seq {
		return nil, fmt.Errorf("snapshot: Restore seq %d would not advance current seq %d", seq, prev.Seq)
	}
	v := &Version{Seq: seq, Epoch: epoch, Iters: iters, Weights: append([]float64(nil), w...)}
	s.install(v)
	return v, nil
}

// Wait blocks until the store holds a version with Seq > since (returning
// it) or ctx is done (returning nil) — the long-poll primitive behind
// the cluster pull endpoint. A satisfying version is returned
// immediately without blocking; concurrent waiters are all woken by the
// publish that satisfies them.
func (s *Store) Wait(ctx context.Context, since uint64) *Version {
	for {
		s.mu.Lock()
		v := s.cur.Load()
		if v != nil && v.Seq > since {
			s.mu.Unlock()
			return v
		}
		if s.changed == nil {
			s.changed = make(chan struct{})
		}
		ch := s.changed
		s.mu.Unlock()
		select {
		case <-ctx.Done():
			return nil
		case <-ch:
		}
	}
}

// PublishCopy is Publish with the weights copied from w; the caller
// keeps ownership of w.
func (s *Store) PublishCopy(epoch int, iters int64, w []float64) *Version {
	return s.Publish(epoch, iters, func(dst []float64) []float64 {
		if len(dst) != len(w) {
			dst = make([]float64, len(w))
		}
		copy(dst, w)
		return dst
	})
}
