package snapshot

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

func TestStoreEmpty(t *testing.T) {
	s := NewStore()
	if v := s.Load(); v != nil {
		t.Fatalf("empty store Load = %+v, want nil", v)
	}
	if got := s.Seq(); got != 0 {
		t.Fatalf("empty store Seq = %d, want 0", got)
	}
}

func TestPublishSequence(t *testing.T) {
	s := NewStore()
	v1 := s.PublishCopy(0, 0, []float64{1, 2})
	if v1.Seq != 1 || v1.Epoch != 0 || v1.Dim() != 2 {
		t.Fatalf("first version = %+v", v1)
	}
	v2 := s.Publish(3, 42, func(dst []float64) []float64 {
		if len(dst) != 2 {
			t.Fatalf("fill got buffer of len %d, want 2", len(dst))
		}
		dst[0], dst[1] = 5, 6
		return dst
	})
	if v2.Seq != 2 || v2.Epoch != 3 || v2.Iters != 42 {
		t.Fatalf("second version = %+v", v2)
	}
	if got := s.Load(); got != v2 {
		t.Fatalf("Load = %p, want latest %p", got, v2)
	}
	// The first version is immutable: its weights survived the publish.
	if v1.Weights[0] != 1 || v1.Weights[1] != 2 {
		t.Fatalf("retired version mutated: %v", v1.Weights)
	}
	if s.Seq() != 2 {
		t.Fatalf("Seq = %d, want 2", s.Seq())
	}
}

func TestPublishCopyDoesNotAlias(t *testing.T) {
	w := []float64{7, 7}
	s := Of(1, 10, w)
	w[0] = -1
	if got := s.Load().Weights[0]; got != 7 {
		t.Fatalf("published weights alias the caller's slice: %g", got)
	}
}

func TestPublishRejectsNonFinite(t *testing.T) {
	s := Of(1, 1, []float64{1, 2})
	if v := s.PublishCopy(2, 2, []float64{1, math.NaN()}); v != nil {
		t.Fatalf("NaN snapshot published: %+v", v)
	}
	if v := s.PublishCopy(2, 2, []float64{math.Inf(1), 0}); v != nil {
		t.Fatalf("Inf snapshot published: %+v", v)
	}
	// The store kept its last finite version.
	if v := s.Load(); v == nil || v.Seq != 1 || v.Weights[0] != 1 {
		t.Fatalf("store lost its finite version: %+v", v)
	}
	// Finite publishes keep working, with Seq continuing from the kept
	// version.
	if v := s.PublishCopy(3, 3, []float64{5, 6}); v == nil || v.Seq != 2 {
		t.Fatalf("finite publish after rejection = %+v, want seq 2", v)
	}
}

func TestPublishCopyDimChange(t *testing.T) {
	s := Of(0, 0, []float64{1})
	v := s.PublishCopy(1, 1, []float64{1, 2, 3})
	if v.Dim() != 3 {
		t.Fatalf("dim after grow = %d, want 3", v.Dim())
	}
}

// TestConcurrentReaders hammers the single-writer/many-reader contract
// under the race detector: one goroutine publishes versions whose
// weights all equal the version's Epoch, readers assert every loaded
// version is internally consistent (no torn weights, Seq matching) and
// that Seq never goes backwards.
func TestConcurrentReaders(t *testing.T) {
	const dim = 64
	s := NewStore()
	var stop atomic.Bool
	var writer, readers sync.WaitGroup

	writer.Add(1)
	go func() {
		defer writer.Done()
		buf := make([]float64, dim)
		for e := 1; !stop.Load(); e++ {
			for i := range buf {
				buf[i] = float64(e)
			}
			s.PublishCopy(e, int64(e), buf)
		}
	}()

	for r := 0; r < 8; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var lastSeq uint64
			for n := 0; n < 20000; n++ {
				v := s.Load()
				if v == nil {
					continue
				}
				if v.Seq < lastSeq {
					t.Errorf("Seq went backwards: %d after %d", v.Seq, lastSeq)
					return
				}
				lastSeq = v.Seq
				want := float64(v.Epoch)
				for i := 0; i < dim; i += 17 {
					if v.Weights[i] != want {
						t.Errorf("torn read: weights[%d]=%g in epoch-%d version", i, v.Weights[i], v.Epoch)
						return
					}
				}
			}
		}()
	}
	readers.Wait()
	stop.Store(true)
	writer.Wait()
}
