package snapshot

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestStoreEmpty(t *testing.T) {
	s := NewStore()
	if v := s.Load(); v != nil {
		t.Fatalf("empty store Load = %+v, want nil", v)
	}
	if got := s.Seq(); got != 0 {
		t.Fatalf("empty store Seq = %d, want 0", got)
	}
}

func TestPublishSequence(t *testing.T) {
	s := NewStore()
	v1 := s.PublishCopy(0, 0, []float64{1, 2})
	if v1.Seq != 1 || v1.Epoch != 0 || v1.Dim() != 2 {
		t.Fatalf("first version = %+v", v1)
	}
	v2 := s.Publish(3, 42, func(dst []float64) []float64 {
		if len(dst) != 2 {
			t.Fatalf("fill got buffer of len %d, want 2", len(dst))
		}
		dst[0], dst[1] = 5, 6
		return dst
	})
	if v2.Seq != 2 || v2.Epoch != 3 || v2.Iters != 42 {
		t.Fatalf("second version = %+v", v2)
	}
	if got := s.Load(); got != v2 {
		t.Fatalf("Load = %p, want latest %p", got, v2)
	}
	// The first version is immutable: its weights survived the publish.
	if v1.Weights[0] != 1 || v1.Weights[1] != 2 {
		t.Fatalf("retired version mutated: %v", v1.Weights)
	}
	if s.Seq() != 2 {
		t.Fatalf("Seq = %d, want 2", s.Seq())
	}
}

func TestPublishCopyDoesNotAlias(t *testing.T) {
	w := []float64{7, 7}
	s := Of(1, 10, w)
	w[0] = -1
	if got := s.Load().Weights[0]; got != 7 {
		t.Fatalf("published weights alias the caller's slice: %g", got)
	}
}

func TestPublishRejectsNonFinite(t *testing.T) {
	s := Of(1, 1, []float64{1, 2})
	if v := s.PublishCopy(2, 2, []float64{1, math.NaN()}); v != nil {
		t.Fatalf("NaN snapshot published: %+v", v)
	}
	if v := s.PublishCopy(2, 2, []float64{math.Inf(1), 0}); v != nil {
		t.Fatalf("Inf snapshot published: %+v", v)
	}
	// The store kept its last finite version.
	if v := s.Load(); v == nil || v.Seq != 1 || v.Weights[0] != 1 {
		t.Fatalf("store lost its finite version: %+v", v)
	}
	// Finite publishes keep working, with Seq continuing from the kept
	// version.
	if v := s.PublishCopy(3, 3, []float64{5, 6}); v == nil || v.Seq != 2 {
		t.Fatalf("finite publish after rejection = %+v, want seq 2", v)
	}
}

func TestPublishCopyDimChange(t *testing.T) {
	s := Of(0, 0, []float64{1})
	v := s.PublishCopy(1, 1, []float64{1, 2, 3})
	if v.Dim() != 3 {
		t.Fatalf("dim after grow = %d, want 3", v.Dim())
	}
}

// TestConcurrentReaders hammers the single-writer/many-reader contract
// under the race detector: one goroutine publishes versions whose
// weights all equal the version's Epoch, readers assert every loaded
// version is internally consistent (no torn weights, Seq matching) and
// that Seq never goes backwards.
func TestConcurrentReaders(t *testing.T) {
	const dim = 64
	s := NewStore()
	var stop atomic.Bool
	var writer, readers sync.WaitGroup

	writer.Add(1)
	go func() {
		defer writer.Done()
		buf := make([]float64, dim)
		for e := 1; !stop.Load(); e++ {
			for i := range buf {
				buf[i] = float64(e)
			}
			s.PublishCopy(e, int64(e), buf)
		}
	}()

	for r := 0; r < 8; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var lastSeq uint64
			for n := 0; n < 20000; n++ {
				v := s.Load()
				if v == nil {
					continue
				}
				if v.Seq < lastSeq {
					t.Errorf("Seq went backwards: %d after %d", v.Seq, lastSeq)
					return
				}
				lastSeq = v.Seq
				want := float64(v.Epoch)
				for i := 0; i < dim; i += 17 {
					if v.Weights[i] != want {
						t.Errorf("torn read: weights[%d]=%g in epoch-%d version", i, v.Weights[i], v.Epoch)
						return
					}
				}
			}
		}()
	}
	readers.Wait()
	stop.Store(true)
	writer.Wait()
}

func TestRejectAccounting(t *testing.T) {
	s := NewStore()
	var gotEpoch int
	var gotIters int64
	s.SetOnReject(func(epoch int, iters int64) { gotEpoch, gotIters = epoch, iters })
	if v := s.PublishCopy(7, 99, []float64{1, math.NaN()}); v != nil {
		t.Fatalf("non-finite publish returned %+v, want nil", v)
	}
	if s.Rejects() != 1 {
		t.Fatalf("Rejects = %d, want 1", s.Rejects())
	}
	if gotEpoch != 7 || gotIters != 99 {
		t.Fatalf("onReject got (%d, %d), want (7, 99)", gotEpoch, gotIters)
	}
	if v := s.PublishCopy(8, 100, []float64{1, 2}); v == nil || v.Seq != 1 {
		t.Fatalf("finite publish after reject = %+v, want seq 1", v)
	}
	if s.Rejects() != 1 {
		t.Fatalf("Rejects after good publish = %d, want 1", s.Rejects())
	}
}

func TestRestore(t *testing.T) {
	s := NewStore()
	if _, err := s.Restore(0, 0, 0, []float64{1}); err == nil {
		t.Fatal("Restore(seq=0) succeeded, want error")
	}
	if _, err := s.Restore(1, 0, 0, []float64{math.Inf(1)}); err == nil {
		t.Fatal("Restore with non-finite weights succeeded, want error")
	}
	v, err := s.Restore(41, 5, 500, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if v.Seq != 41 || s.Seq() != 41 {
		t.Fatalf("restored seq = %d / %d, want 41", v.Seq, s.Seq())
	}
	// Publishes continue past the restored seq.
	if v2 := s.PublishCopy(6, 600, []float64{3, 4}); v2.Seq != 42 {
		t.Fatalf("post-restore publish seq = %d, want 42", v2.Seq)
	}
	// Restore never moves the sequence backwards.
	if _, err := s.Restore(10, 0, 0, []float64{1, 2}); err == nil {
		t.Fatal("backwards Restore succeeded, want error")
	}
}

func TestWaitImmediateAndBlocking(t *testing.T) {
	s := NewStore()
	s.PublishCopy(1, 1, []float64{1})

	// Satisfied immediately: current seq 1 > since 0.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if v := s.Wait(ctx, 0); v == nil || v.Seq != 1 {
		t.Fatalf("Wait(0) = %+v, want seq 1", v)
	}

	// Blocks until the next publish; all waiters wake.
	const waiters = 4
	var wg sync.WaitGroup
	got := make([]uint64, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if v := s.Wait(ctx, 1); v != nil {
				got[i] = v.Seq
			}
		}(i)
	}
	// Give the waiters a moment to park, then publish.
	time.Sleep(10 * time.Millisecond)
	s.PublishCopy(2, 2, []float64{2})
	wg.Wait()
	for i, seq := range got {
		if seq != 2 {
			t.Fatalf("waiter %d woke with seq %d, want 2", i, seq)
		}
	}

	// Cancelled context returns nil.
	done, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if v := s.Wait(done, 99); v != nil {
		t.Fatalf("Wait on cancelled ctx = %+v, want nil", v)
	}
}
